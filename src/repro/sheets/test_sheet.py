"""Test definition sheet: parsing and emitting.

Layout follows the paper's first table: the first two columns are the step
number and Δt, the last column the free-text remark, and every column in
between is one signal of the DUT.  An empty cell means "the signal keeps its
previous status"::

    test step | dt  | IGN_ST | DS_FL  | DS_FR  | NIGHT | INT_ILL | remarks
    0         | 0,5 | Off    | Closed | Closed | 0     | Lo      | day: no interior
    1         | 0,5 |        | Open   |        |       | Lo      | illumination, if
    ...
"""

from __future__ import annotations

from ..core.errors import SheetError
from ..core.testdef import StatusAssignment, TestDefinition, TestStep
from ..core.values import format_number, parse_number
from .worksheet import Worksheet

__all__ = ["parse_test_sheet", "build_test_sheet"]

_STEP_TITLES = ("test step", "step", "test_step", "no", "#")
_DT_TITLES = ("dt", "δt", "ǻt", "delta t", "delta_t", "duration")
_REMARK_TITLES = ("remarks", "remark", "comment", "comments")
_REQUIREMENT_TITLES = ("requirement", "req", "req id")


def _find_column(columns: dict[str, int], titles: tuple[str, ...]) -> int | None:
    for title in titles:
        if title in columns:
            return columns[title]
    return None


def parse_test_sheet(sheet: Worksheet, *, name: str | None = None) -> TestDefinition:
    """Parse a test definition worksheet into a :class:`TestDefinition`."""
    header_row = None
    columns: dict[str, int] = {}
    for candidate_step in _STEP_TITLES:
        for candidate_dt in _DT_TITLES:
            try:
                header_row, columns = sheet.find_header(candidate_step, candidate_dt)
            except SheetError:
                continue
            break
        if header_row is not None:
            break
    if header_row is None:
        raise SheetError("no header row with step and dt columns", sheet=sheet.name)

    step_column = _find_column(columns, _STEP_TITLES)
    dt_column = _find_column(columns, _DT_TITLES)
    remark_column = _find_column(columns, _REMARK_TITLES)
    requirement_column = _find_column(columns, _REQUIREMENT_TITLES)
    assert step_column is not None and dt_column is not None

    reserved = {step_column, dt_column}
    if remark_column is not None:
        reserved.add(remark_column)
    if requirement_column is not None:
        reserved.add(requirement_column)

    # Every remaining non-empty header cell is a signal column, in order.
    signal_columns: list[tuple[int, str]] = []
    header_cells = sheet.row(header_row)
    for column, title in enumerate(header_cells):
        if column in reserved or not title.strip():
            continue
        signal_columns.append((column, title.strip()))

    definition = TestDefinition(
        name=name or sheet.name,
        signals=[title for _, title in signal_columns],
    )

    for row in range(header_row + 1, sheet.row_count):
        if sheet.is_empty_row(row):
            continue
        step_text = sheet.get(row, step_column).strip()
        if not step_text:
            raise SheetError("row without a step number", sheet=sheet.name, row=row)
        try:
            number = int(parse_number(step_text))
        except Exception as exc:
            raise SheetError(
                f"step number {step_text!r} is not an integer", sheet=sheet.name, row=row
            ) from exc
        dt_text = sheet.get(row, dt_column).strip()
        try:
            duration = parse_number(dt_text) if dt_text else 0.0
        except Exception as exc:
            raise SheetError(
                f"cannot parse dt {dt_text!r}", sheet=sheet.name, row=row
            ) from exc
        assignments = []
        for column, signal in signal_columns:
            status = sheet.get(row, column).strip()
            if status:
                assignments.append(StatusAssignment(signal, status))
        remark = sheet.get(row, remark_column).strip() if remark_column is not None else ""
        requirement = (
            sheet.get(row, requirement_column).strip() or None
            if requirement_column is not None
            else None
        )
        try:
            definition.append(TestStep(
                number=number,
                duration=float(duration or 0.0),
                assignments=tuple(assignments),
                remark=remark,
                requirement=requirement,
            ))
        except Exception as exc:
            raise SheetError(str(exc), sheet=sheet.name, row=row) from exc
    return definition


def build_test_sheet(definition: TestDefinition, *, name: str | None = None) -> Worksheet:
    """Emit a :class:`TestDefinition` as a test definition worksheet."""
    sheet = Worksheet(name or definition.name)
    has_requirements = any(step.requirement for step in definition)
    header: list[str] = ["test step", "dt", *definition.columns, "remarks"]
    if has_requirements:
        header.append("requirement")
    sheet.append_row(header)
    for step in definition:
        row: list[str] = [str(step.number), format_number(step.duration, decimal_comma=True)]
        for column in definition.columns:
            row.append(step.status_for(column) or "")
        row.append(step.remark)
        if has_requirements:
            row.append(step.requirement or "")
        sheet.append_row(row)
    return sheet
