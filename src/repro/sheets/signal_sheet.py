"""Signal definition sheet: parsing and emitting.

The paper: *"In the signal definition sheet all input and output signals of
the device under test (DUT) are defined as well as the status of these
signals before starting the test itself."*

Layout used by this reproduction (one header row, one row per signal)::

    signal   | direction | kind      | pins                  | message | initial | description
    IGN_ST   | in        | can       |                       | IGN_ST  | Off     | ignition status
    DS_FL    | in        | resistive | DS_FL                 |         | Closed  | door switch front left
    INT_ILL  | out       | analog    | INT_ILL_F;INT_ILL_R   |         | Lo      | interior illumination
"""

from __future__ import annotations

from ..core.errors import SheetError
from ..core.signals import Signal, SignalDirection, SignalKind, SignalSet
from .worksheet import Worksheet

__all__ = ["SIGNAL_SHEET_COLUMNS", "parse_signal_sheet", "build_signal_sheet"]

#: Canonical column titles of a signal definition sheet.
SIGNAL_SHEET_COLUMNS = (
    "signal", "direction", "kind", "pins", "message", "initial", "description",
)

_PIN_SEPARATORS = (";", "/", "|")


def _split_pins(cell: str) -> tuple[str, ...]:
    text = cell.strip()
    if not text:
        return ()
    for separator in _PIN_SEPARATORS:
        if separator in text:
            return tuple(part.strip() for part in text.split(separator) if part.strip())
    return (text,)


def parse_signal_sheet(sheet: Worksheet, *, dut: str = "") -> SignalSet:
    """Parse a signal definition worksheet into a :class:`SignalSet`."""
    header_row, columns = sheet.find_header("signal", "direction", "kind")
    signals = SignalSet(dut=dut or sheet.name)

    def cell(row: int, title: str) -> str:
        column = columns.get(title)
        if column is None:
            return ""
        return sheet.get(row, column).strip()

    for row in range(header_row + 1, sheet.row_count):
        if sheet.is_empty_row(row):
            continue
        name = cell(row, "signal")
        if not name:
            raise SheetError("row without a signal name", sheet=sheet.name, row=row)
        try:
            signal = Signal(
                name=name,
                direction=SignalDirection.parse(cell(row, "direction")),
                kind=SignalKind.parse(cell(row, "kind")),
                pins=_split_pins(cell(row, "pins")),
                message=cell(row, "message") or None,
                initial_status=cell(row, "initial") or None,
                description=cell(row, "description"),
            )
        except SheetError:
            raise
        except Exception as exc:
            raise SheetError(str(exc), sheet=sheet.name, row=row) from exc
        signals.add(signal)
    return signals


def build_signal_sheet(signals: SignalSet, *, name: str = "signals") -> Worksheet:
    """Emit a :class:`SignalSet` as a signal definition worksheet."""
    sheet = Worksheet(name)
    sheet.append_row(SIGNAL_SHEET_COLUMNS)
    for signal in signals:
        sheet.append_row((
            signal.name,
            signal.direction.value,
            signal.kind.value,
            ";".join(signal.pins),
            signal.message or "",
            signal.initial_status or "",
            signal.description,
        ))
    return sheet
