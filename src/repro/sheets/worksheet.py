"""A minimal worksheet model - the library's stand-in for Excel.

The paper uses Excel as the input front-end purely because *"usage of the
tool chain [must be open] to all involved engineers without specific
training"*.  The semantics live entirely in the three sheet layouts, not in
the file format, so this reproduction substitutes a small in-memory grid
(plus CSV serialisation, see :mod:`repro.sheets.csvio`) for the spreadsheet
file.  The grid keeps the spreadsheet's mental model: cells addressed by row
and column (either ``(row, col)`` indices or ``"B3"`` references), ragged
rows, everything stored as text.
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator, Sequence

from ..core.errors import SheetError

__all__ = ["Worksheet", "cell_reference", "parse_cell_reference"]

_CELL_RE = re.compile(r"^([A-Za-z]+)(\d+)$")


def parse_cell_reference(reference: str) -> tuple[int, int]:
    """Convert an ``"A1"``-style reference into 0-based ``(row, column)``."""
    match = _CELL_RE.match(str(reference).strip())
    if not match:
        raise SheetError(f"invalid cell reference: {reference!r}")
    letters, digits = match.groups()
    column = 0
    for char in letters.upper():
        column = column * 26 + (ord(char) - ord("A") + 1)
    row = int(digits)
    if row < 1:
        raise SheetError(f"invalid cell reference: {reference!r}")
    return row - 1, column - 1


def cell_reference(row: int, column: int) -> str:
    """Convert 0-based ``(row, column)`` into an ``"A1"``-style reference."""
    if row < 0 or column < 0:
        raise SheetError(f"invalid cell coordinates: ({row}, {column})")
    letters = ""
    remaining = column + 1
    while remaining:
        remaining, digit = divmod(remaining - 1, 26)
        letters = chr(ord("A") + digit) + letters
    return f"{letters}{row + 1}"


class Worksheet:
    """A named grid of text cells.

    Cells read as empty strings when never written; writing trims nothing and
    stores values as text (like a spreadsheet's "general" format).  The grid
    grows on demand.
    """

    def __init__(self, name: str, rows: Iterable[Sequence[object]] = ()):
        if not str(name).strip():
            raise SheetError("worksheet needs a name")
        self.name = str(name).strip()
        self._rows: list[list[str]] = []
        for row in rows:
            self.append_row(row)

    # -- writing -------------------------------------------------------------

    def append_row(self, values: Sequence[object]) -> int:
        """Append a row of values; returns the new row's 0-based index."""
        self._rows.append([self._to_text(value) for value in values])
        return len(self._rows) - 1

    def set(self, row: int, column: int, value: object) -> None:
        """Write one cell, growing the grid as necessary."""
        if row < 0 or column < 0:
            raise SheetError(f"invalid cell coordinates: ({row}, {column})")
        while len(self._rows) <= row:
            self._rows.append([])
        cells = self._rows[row]
        while len(cells) <= column:
            cells.append("")
        cells[column] = self._to_text(value)

    def set_reference(self, reference: str, value: object) -> None:
        """Write one cell addressed by an ``"A1"``-style reference."""
        row, column = parse_cell_reference(reference)
        self.set(row, column, value)

    @staticmethod
    def _to_text(value: object) -> str:
        if value is None:
            return ""
        if isinstance(value, float) and value.is_integer():
            return str(int(value))
        return str(value)

    # -- reading -------------------------------------------------------------

    def get(self, row: int, column: int) -> str:
        """Read one cell; out-of-range cells read as empty strings."""
        if row < 0 or column < 0:
            raise SheetError(f"invalid cell coordinates: ({row}, {column})")
        if row >= len(self._rows):
            return ""
        cells = self._rows[row]
        if column >= len(cells):
            return ""
        return cells[column]

    def get_reference(self, reference: str) -> str:
        """Read one cell addressed by an ``"A1"``-style reference."""
        row, column = parse_cell_reference(reference)
        return self.get(row, column)

    def row(self, index: int) -> tuple[str, ...]:
        """One row, padded to :attr:`column_count` cells."""
        width = self.column_count
        if index >= len(self._rows):
            return ("",) * width
        cells = self._rows[index]
        return tuple(cells) + ("",) * (width - len(cells))

    def rows(self) -> Iterator[tuple[str, ...]]:
        """Iterate all rows, each padded to the sheet's width."""
        for index in range(len(self._rows)):
            yield self.row(index)

    @property
    def row_count(self) -> int:
        return len(self._rows)

    @property
    def column_count(self) -> int:
        return max((len(row) for row in self._rows), default=0)

    def column(self, index: int) -> tuple[str, ...]:
        """One column, one entry per row."""
        return tuple(self.get(row, index) for row in range(self.row_count))

    def is_empty_row(self, index: int) -> bool:
        """True when every cell of the row is blank."""
        return all(not cell.strip() for cell in self.row(index))

    def find_header(self, *required: str) -> tuple[int, dict[str, int]]:
        """Locate the header row containing all *required* column titles.

        Returns the header row index and a mapping of lower-cased cell text
        to column index for every non-empty header cell.  Raises
        :class:`SheetError` when no row contains all required titles.
        """
        wanted = [title.lower() for title in required]
        for row_index in range(self.row_count):
            cells = [cell.strip().lower() for cell in self.row(row_index)]
            if all(title in cells for title in wanted):
                mapping = {
                    cell: column
                    for column, cell in enumerate(cells)
                    if cell
                }
                return row_index, mapping
        raise SheetError(
            f"no header row with columns {list(required)!r}", sheet=self.name
        )

    # -- dunder ---------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Worksheet):
            return NotImplemented
        return self.name == other.name and list(self.rows()) == list(other.rows())

    def __len__(self) -> int:
        return self.row_count

    def __repr__(self) -> str:
        return f"Worksheet(name={self.name!r}, rows={self.row_count}, cols={self.column_count})"

    # -- presentation ---------------------------------------------------------

    def to_text(self, *, separator: str = " | ") -> str:
        """Render the sheet as aligned text (used by reports and benches)."""
        widths = [0] * self.column_count
        for row in self.rows():
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = []
        for row in self.rows():
            padded = [cell.ljust(widths[index]) for index, cell in enumerate(row)]
            lines.append(separator.join(padded).rstrip())
        return "\n".join(lines)
