"""Worksheet front-end: the paper's Excel sheets, reproduced as CSV grids."""

from .csvio import read_worksheet, worksheet_from_csv, worksheet_to_csv, write_worksheet
from .signal_sheet import SIGNAL_SHEET_COLUMNS, build_signal_sheet, parse_signal_sheet
from .status_sheet import STATUS_SHEET_COLUMNS, build_status_sheet, parse_status_sheet
from .test_sheet import build_test_sheet, parse_test_sheet
from .workbook import (
    Workbook,
    load_suite,
    save_suite,
    suite_to_workbook,
    workbook_to_suite,
)
from .worksheet import Worksheet, cell_reference, parse_cell_reference

__all__ = [
    "Worksheet",
    "cell_reference",
    "parse_cell_reference",
    "worksheet_to_csv",
    "worksheet_from_csv",
    "read_worksheet",
    "write_worksheet",
    "SIGNAL_SHEET_COLUMNS",
    "STATUS_SHEET_COLUMNS",
    "parse_signal_sheet",
    "build_signal_sheet",
    "parse_status_sheet",
    "build_status_sheet",
    "parse_test_sheet",
    "build_test_sheet",
    "Workbook",
    "workbook_to_suite",
    "suite_to_workbook",
    "load_suite",
    "save_suite",
]
