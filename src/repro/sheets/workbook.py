"""Workbook: the bundle of sheets describing one DUT's component tests.

A workbook contains exactly one signal definition sheet, one status
definition sheet and any number of test definition sheets - the paper's
"three different types of Excel sheets".  Workbooks can be built in memory,
converted to/from a :class:`~repro.core.testdef.TestSuite`, and persisted as
a directory of CSV files (``signals.csv``, ``status.csv``, ``test_<name>.csv``)
so projects can keep their test knowledge under version control.
"""

from __future__ import annotations

import os
from typing import Iterable, Iterator

from ..core.errors import SheetError
from ..core.testdef import TestSuite
from .csvio import read_worksheet, write_worksheet
from .signal_sheet import build_signal_sheet, parse_signal_sheet
from .status_sheet import build_status_sheet, parse_status_sheet
from .test_sheet import build_test_sheet, parse_test_sheet
from .worksheet import Worksheet

__all__ = ["Workbook", "suite_to_workbook", "workbook_to_suite", "load_suite", "save_suite"]

_SIGNAL_SHEET = "signals"
_STATUS_SHEET = "status"
_TEST_PREFIX = "test_"
_META_SHEET = "meta"


class Workbook:
    """A named collection of worksheets with the three-sheet convention."""

    def __init__(self, name: str, sheets: Iterable[Worksheet] = ()):
        if not str(name).strip():
            raise SheetError("workbook needs a name")
        self.name = str(name).strip()
        self._sheets: dict[str, Worksheet] = {}
        for sheet in sheets:
            self.add(sheet)

    def add(self, sheet: Worksheet, *, replace: bool = False) -> None:
        """Add a worksheet; duplicate names raise unless *replace*."""
        key = sheet.name.lower()
        if key in self._sheets and not replace:
            raise SheetError(f"duplicate worksheet name: {sheet.name!r}")
        self._sheets[key] = sheet

    def get(self, name: str) -> Worksheet:
        try:
            return self._sheets[str(name).lower()]
        except KeyError as exc:
            raise SheetError(f"workbook has no sheet {name!r}") from exc

    def __contains__(self, name: object) -> bool:
        return str(name).lower() in self._sheets

    def __iter__(self) -> Iterator[Worksheet]:
        return iter(self._sheets.values())

    def __len__(self) -> int:
        return len(self._sheets)

    @property
    def sheet_names(self) -> tuple[str, ...]:
        return tuple(sheet.name for sheet in self._sheets.values())

    @property
    def signal_sheet(self) -> Worksheet:
        """The signal definition sheet (named ``signals``)."""
        return self.get(_SIGNAL_SHEET)

    @property
    def status_sheet(self) -> Worksheet:
        """The status definition sheet (named ``status``)."""
        return self.get(_STATUS_SHEET)

    @property
    def test_sheets(self) -> tuple[Worksheet, ...]:
        """All test definition sheets (named ``test_<name>``), in order."""
        return tuple(
            sheet for sheet in self._sheets.values()
            if sheet.name.lower().startswith(_TEST_PREFIX)
        )

    # -- persistence ---------------------------------------------------------

    def save(self, directory: str) -> None:
        """Write every sheet as ``<directory>/<sheet name>.csv``."""
        os.makedirs(directory, exist_ok=True)
        for sheet in self:
            write_worksheet(sheet, os.path.join(directory, f"{sheet.name}.csv"))

    @classmethod
    def load(cls, directory: str, *, name: str | None = None) -> "Workbook":
        """Read every ``*.csv`` file in *directory* as one worksheet."""
        if not os.path.isdir(directory):
            raise SheetError(f"workbook directory not found: {directory}")
        workbook = cls(name or os.path.basename(os.path.abspath(directory)))
        for filename in sorted(os.listdir(directory)):
            if not filename.lower().endswith(".csv"):
                continue
            sheet_name = os.path.splitext(filename)[0]
            workbook.add(read_worksheet(os.path.join(directory, filename), sheet_name))
        return workbook

    def __repr__(self) -> str:
        return f"Workbook(name={self.name!r}, sheets={list(self.sheet_names)!r})"


def _dut_name(workbook: Workbook) -> str:
    """DUT name of a workbook: the ``meta`` sheet wins over the workbook name."""
    if _META_SHEET in workbook:
        meta = workbook.get(_META_SHEET)
        for row in meta.rows():
            if len(row) >= 2 and row[0].strip().lower() == "dut" and row[1].strip():
                return row[1].strip()
    return workbook.name


def workbook_to_suite(workbook: Workbook) -> TestSuite:
    """Interpret a workbook's sheets as a :class:`TestSuite`."""
    dut = _dut_name(workbook)
    signals = parse_signal_sheet(workbook.signal_sheet, dut=dut)
    statuses = parse_status_sheet(workbook.status_sheet)
    suite = TestSuite(dut, signals, statuses)
    for sheet in workbook.test_sheets:
        test_name = sheet.name[len(_TEST_PREFIX):] if sheet.name.lower().startswith(
            _TEST_PREFIX) else sheet.name
        suite.add(parse_test_sheet(sheet, name=test_name))
    suite.validate()
    return suite


def suite_to_workbook(suite: TestSuite, *, name: str | None = None) -> Workbook:
    """Render a :class:`TestSuite` back into its three-sheet workbook form."""
    workbook = Workbook(name or suite.dut)
    meta = Worksheet(_META_SHEET, [("key", "value"), ("dut", suite.dut)])
    workbook.add(meta)
    workbook.add(build_signal_sheet(suite.signals, name=_SIGNAL_SHEET))
    workbook.add(build_status_sheet(suite.statuses, name=_STATUS_SHEET))
    for test in suite:
        workbook.add(build_test_sheet(test, name=f"{_TEST_PREFIX}{test.name}"))
    return workbook


def load_suite(directory: str, *, name: str | None = None) -> TestSuite:
    """Load a CSV workbook directory and interpret it as a test suite."""
    return workbook_to_suite(Workbook.load(directory, name=name))


def save_suite(suite: TestSuite, directory: str) -> None:
    """Persist a test suite as a CSV workbook directory."""
    suite_to_workbook(suite).save(directory)
