"""A3 - campaign scaling: serial vs. parallel executor backends.

The extended suite (4 sheets) against the interior-light fault catalogue
(baseline + 9 faults) expands to 40 independent jobs.  The benchmark runs
the identical job list on the serial backend and on thread pools of growing
width, records the wall time per backend, and asserts the core determinism
property: the aggregated verdict table is byte-identical no matter which
backend executed the campaign.

(The virtual stands are pure Python, so thread speedups are bounded by the
interpreter lock; the point of the measurement is the scaling *trend* and
the determinism guarantee, which carry over to process pools and future
async stands.)
"""

from __future__ import annotations

from conftest import interior_harness

from repro.analysis import FaultCampaign, interior_light_faults
from repro.core import Compiler
from repro.dut import InteriorLightEcu
from repro.paper import extended_suite, paper_signal_set
from repro.teststand import SerialExecutor, ThreadExecutor, build_paper_stand, format_table


def _campaign() -> FaultCampaign:
    scripts = Compiler().compile_suite(extended_suite())
    return FaultCampaign(scripts, paper_signal_set(), build_paper_stand,
                         interior_harness, InteriorLightEcu)


def _sweep():
    campaign = _campaign()
    executors = [SerialExecutor(), ThreadExecutor(2), ThreadExecutor(4)]
    runs = []
    for executor in executors:
        result = campaign.run(interior_light_faults(), executor=executor)
        runs.append((executor, result))
    return runs


def test_serial_vs_parallel_campaign(benchmark, print_block):
    runs = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    tables = {result.table() for _, result in runs}
    verdict_tables = {result.execution.verdict_table() for _, result in runs}
    # Determinism: every backend produced the byte-identical aggregates.
    assert len(tables) == 1
    assert len(verdict_tables) == 1
    for _, result in runs:
        assert result.baseline_clean
        assert result.detection_rate == 1.0
        assert len(result.execution) == 40

    rows = []
    for executor, result in runs:
        execution = result.execution
        rows.append((
            f"{execution.backend} x{execution.workers}",
            str(len(execution)),
            f"{execution.wall_time * 1e3:.1f} ms",
            f"{execution.job_seconds * 1e3:.1f} ms",
            f"{execution.speedup:.2f}x",
        ))
    print_block(
        "A3: fault campaign (40 jobs) on serial vs. parallel backends",
        format_table(("backend", "jobs", "wall", "sum of jobs", "speedup"), rows)
        + "\n\nidentical verdict tables on every backend: True",
    )
