"""A1 - ablation: resource allocation policies.

The paper only requires that the stand "searches an appropriate resource";
it does not prescribe how.  This ablation compares the three implemented
policies (first-fit, best-fit, least-used) on a dense synthetic script that
keeps many door contacts occupied simultaneously on the big rack:

* all policies must produce the same verdicts (allocation is functionally
  transparent),
* best-fit keeps the wide-range decades free (its worst-case capability span
  in use is smaller), while least-used spreads work most evenly.
"""

from __future__ import annotations

from repro.core.script import MethodCall
from repro.core.signals import Signal, SignalDirection, SignalKind
from repro.teststand import ALLOCATION_POLICIES, Allocator, build_big_rack, format_table

PINS = ("DS_FL", "DS_FR", "DS_RL", "DS_RR")
SIGNALS = tuple(
    Signal(pin, SignalDirection.INPUT, SignalKind.RESISTIVE, pins=(pin,)) for pin in PINS
)
SMALL_REQUEST = MethodCall("put_r", {"r": "0.5", "r_min": "0", "r_max": "2"})


def _exercise(policy: str):
    stand = build_big_rack(pins=PINS)
    allocator = Allocator(stand.resources, stand.connections, policy=policy)
    allocations = []
    # Repeatedly allocate and partially release the four door contacts so the
    # allocator has to make real choices (200 allocations).
    for round_index in range(50):
        for signal in SIGNALS:
            allocations.append(allocator.allocate(signal, SMALL_REQUEST, {}))
        allocator.release(SIGNALS[round_index % len(SIGNALS)].name)
    counts = allocator.allocation_counts
    spans = {
        name: stand.resources.get(name).capability_for("put_r").span
        for name in counts
        if stand.resources.get(name).supports("put_r")
    }
    return allocations, counts, spans


def run_all_policies():
    return {policy: _exercise(policy) for policy in ALLOCATION_POLICIES}


def test_allocator_ablation(benchmark, print_block):
    outcomes = benchmark(run_all_policies)

    assert set(outcomes) == set(ALLOCATION_POLICIES)
    for policy, (allocations, _, _) in outcomes.items():
        assert len(allocations) == 200, policy

    # best_fit prefers the narrowest sufficient decade (DEC_D, 10 kOhm) as its
    # first choice, while first_fit grabs a wide 1 MOhm decade first.
    def favourite(counts, spans):
        used = {name: count for name, count in counts.items() if count and name in spans}
        return max(used, key=used.get)

    _, best_counts, spans = outcomes["best_fit"]
    _, first_counts, first_spans = outcomes["first_fit"]
    assert spans[favourite(best_counts, spans)] <= 1.0e4
    assert first_spans[favourite(first_counts, first_spans)] >= 1.0e6
    # least_used spreads allocations more evenly than first_fit.
    def spread(counts):
        values = [count for count in counts.values() if count]
        return max(values) - min(values)
    assert spread(outcomes["least_used"][1]) <= spread(outcomes["first_fit"][1])

    rows = []
    for policy, (_, counts, _) in outcomes.items():
        rows.append((policy, ", ".join(f"{name}:{count}" for name, count in sorted(counts.items())
                                       if count)))
    print_block(
        "A1: allocation-policy ablation (200 put_r allocations on the big rack)",
        format_table(("policy", "allocations per resource"), rows),
    )
