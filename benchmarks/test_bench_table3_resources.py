"""T3 - the paper's resource table, regenerated from the stand model.

The paper's stand owns one DVM (get_u, ±60 V) and two resistor decades
(0..1 MOhm and 0..200 kOhm); the CAN interface needed by the very same
example's ``put_can`` statuses is modelled as Ress4 (documented deviation).
The benchmark measures stand construction plus capability-table rendering.
"""

from __future__ import annotations

from repro.paper import render_resource_table
from repro.teststand import build_paper_stand


def test_table3_resource_table(benchmark, print_block):
    def build_and_render():
        stand = build_paper_stand()
        return stand, stand.resource_rows(), render_resource_table(stand)

    stand, rows, rendered = benchmark(build_and_render)

    by_name = {row[0]: row for row in rows}
    assert by_name["Ress1"][1:6] == ("get_u", "u", "-60", "60", "V")
    assert by_name["Ress2"][1] == "put_r" and by_name["Ress2"][4] == "1000000"
    assert by_name["Ress3"][1] == "put_r" and by_name["Ress3"][4] == "200000"
    assert "Ress4" in by_name  # CAN interface (needed by put_can, see DESIGN.md)
    assert set(stand.methods_supported()) == {"get_u", "put_r", "put_can", "get_can"}

    print_block("T3: resource table of the paper's test stand", rendered)
