"""PR 8 - the script bytecode VM: compile the whole run, not just the allocations.

PR 5's execution plans hoisted the resource *search* out of the campaign
loop but still walked the script tree per run.  The VM compiles each
(script x stand x registry x variables-shape) combination into a flat
instruction stream - pre-resolved operands, merged settles, batched
instrument I/O, pre-evaluated limit expressions - and executes that
instead.

This benchmark runs the E4 family workload - the bundled suites of all
five body-electronics ECUs against their full fault catalogues, serial
backend - with plans and stand reuse ON both times; the knob under test
is ``use_vm``.  It asserts

* determinism before speed: campaign *and* executor verdict tables are
  byte-identical with the VM on or off,
* the VM actually served the timed passes (``vm_runs`` > 0, zero
  pre-flight degrades),
* the acceptance bar: the VM path beats the plan-replay path it rides
  on by >= ``SPEEDUP_BAR``.

Campaigns are built ONCE and reused across passes: rebuilding them would
create fresh script/call objects every pass, defeating the identity-based
memos both paths share, and measure an artifact instead of the VM.
Timed passes interleave vm-off/vm-on so machine load hits both alike.
"""

from __future__ import annotations

import time

from repro.targets import CampaignSpec, build_campaign, campaignable_dut_names
from repro.teststand import GLOBAL_PLAN_CACHE, format_table

#: The acceptance bar for the VM over the plan-replay-only path on the
#: family workload.  The PR 8 target is 1.3x; the enforced floor leaves
#: headroom for loaded CI runners (the trajectory point in
#: ``BENCH_executor.json`` records the real measured ratio).
SPEEDUP_BAR = 1.2

#: Interleaved measurement rounds per attempt (best ratio counts).
ROUNDS = 3


def _family_campaigns(use_vm: bool):
    return [
        build_campaign(CampaignSpec(dut=dut, use_vm=use_vm))
        for dut in campaignable_dut_names()
    ]


def _run_family(campaigns) -> list:
    return [campaign.run(faults) for campaign, faults in campaigns]


def _measure(plan_only_campaigns, vm_campaigns) -> tuple[float, float]:
    plan_only = float("inf")
    vm_wall = float("inf")
    for _ in range(ROUNDS):
        t0 = time.perf_counter()
        _run_family(plan_only_campaigns)
        plan_only = min(plan_only, time.perf_counter() - t0)
        t0 = time.perf_counter()
        _run_family(vm_campaigns)
        vm_wall = min(vm_wall, time.perf_counter() - t0)
    return plan_only, vm_wall


def test_vm_family_campaign(benchmark, print_block):
    plan_only_campaigns = _family_campaigns(False)
    vm_campaigns = _family_campaigns(True)

    GLOBAL_PLAN_CACHE.clear()
    # Warm both paths: plan compiles, VM binds, prologue memos.
    plan_results = _run_family(plan_only_campaigns)
    vm_results = _run_family(vm_campaigns)

    # Determinism before speed: identical fault tables per DUT either way.
    for plan_res, vm_res in zip(plan_results, vm_results):
        assert plan_res.table() == vm_res.table()
        assert plan_res.execution.verdict_table() == \
            vm_res.execution.verdict_table()

    plan_only, vm_wall = benchmark.pedantic(
        _measure, args=(plan_only_campaigns, vm_campaigns),
        rounds=1, iterations=1)

    stats = GLOBAL_PLAN_CACHE.stats.snapshot()
    assert stats["vm_runs"] > 0, stats
    assert stats["vm_degraded"] == 0, stats

    # A loaded runner can distort one attempt; the bar gets two further
    # attempts (best ratio counts) before failing.
    speedup = plan_only / vm_wall
    for _ in range(2):
        if speedup >= SPEEDUP_BAR:
            break
        plan_only, vm_wall = _measure(plan_only_campaigns, vm_campaigns)
        speedup = max(speedup, plan_only / vm_wall)
    assert speedup >= SPEEDUP_BAR, (
        f"bytecode VM only {speedup:.2f}x faster than the plan-replay path "
        f"(plan replay {plan_only:.3f} s, VM {vm_wall:.3f} s)"
    )

    print_block(
        "PR 8: bytecode VM on the E4 family workload (serial)",
        format_table(
            ("path", "wall", "speedup"),
            (
                ("plan replay, classic walk", f"{plan_only * 1e3:.0f} ms",
                 "1.0x"),
                ("bytecode VM", f"{vm_wall * 1e3:.0f} ms", f"{speedup:.2f}x"),
            ),
        )
        + f"\n\nvm: {stats['vm_runs']} full-VM run(s), "
          f"{stats['alloc_only_runs']} alloc-replay-only, "
          f"{stats['vm_degraded']} degraded pre-flight; verdict tables "
          f"byte-identical.",
    )
