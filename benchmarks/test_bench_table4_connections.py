"""T4 - the paper's connection matrix, regenerated, plus allocator decisions.

Reproduces the routing table (Sw1.1/Sw1.2 for the DVM, Mx1..Mx4 channels for
the two decades) and shows, for every (signal, method) of the example, which
resource the allocator picks through which connector - the "searches an
appropriate resource, that can be connected to the signal pin" step of the
paper.  The benchmark measures a full allocation pass over the example.
"""

from __future__ import annotations

from repro.core.script import MethodCall
from repro.paper import paper_signal_set, render_connection_matrix
from repro.teststand import Allocator, build_paper_stand, format_table

REQUESTS = (
    ("DS_FL", MethodCall("put_r", {"r": "0.5", "r_min": "0", "r_max": "2"})),
    ("DS_FR", MethodCall("put_r", {"r": "0.5", "r_min": "0", "r_max": "2"})),
    ("INT_ILL", MethodCall("get_u", {"u_min": "(0.7*ubatt)", "u_max": "(1.1*ubatt)"})),
    ("IGN_ST", MethodCall("put_can", {"data": "0001B"})),
    ("NIGHT", MethodCall("put_can", {"data": "1B"})),
)


def _allocate_all():
    stand = build_paper_stand()
    signals = paper_signal_set()
    allocator = Allocator(stand.resources, stand.connections)
    allocations = []
    for signal_name, call in REQUESTS:
        allocations.append(allocator.allocate(signals.get(signal_name), call, {"ubatt": 12.0}))
    return stand, allocations


def test_table4_connection_matrix_and_allocation(benchmark, print_block):
    stand, allocations = benchmark(_allocate_all)

    rows = {row[0]: row for row in stand.connection_rows()}
    assert rows["Ress1"][1] == "Sw1.1" and rows["Ress1"][2] == "Sw1.2"
    assert rows["Ress2"][3] == "Mx1.2" and rows["Ress3"][3] == "Mx1.1"
    assert rows["Ress2"][6] == "Mx4.2" and rows["Ress3"][6] == "Mx4.1"

    by_signal = {allocation.signal: allocation for allocation in allocations}
    assert by_signal["INT_ILL"].resource == "Ress1"
    assert by_signal["INT_ILL"].pins == ("INT_ILL_F", "INT_ILL_R")
    assert {by_signal["DS_FL"].resource, by_signal["DS_FR"].resource} == {"Ress2", "Ress3"}
    assert by_signal["IGN_ST"].resource == "Ress4"

    allocation_rows = [
        (a.signal, a.method, a.resource,
         ", ".join(str(route.connector) for route in a.routes) or "<bus>")
        for a in allocations
    ]
    print_block(
        "T4: connection matrix (paper table 4) + allocator decisions",
        render_connection_matrix(stand) + "\n\n"
        + format_table(("signal", "method", "resource", "via"), allocation_rows),
    )
