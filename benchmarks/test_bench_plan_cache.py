"""A5 - compiled execution plans: allocate once, run the whole family on it.

The paper's interpreter searches a resource *"for each method to be carried
out"*; PR 5's execution plans hoist that search out of the campaign loop:
the first run of every (script x stand-topology x policy) combination
compiles an :class:`~repro.teststand.plan.ExecutionPlan`, every later run
replays it (re-checking only the variable-dependent capability window and
route availability), and workers reuse one pooled stand per factory instead
of rebuilding resource tables and crossbar matrices per job.

This benchmark runs the E4 family workload - the bundled suites of all five
body-electronics ECUs against their full fault catalogues, serial backend -
once with the fast paths off and once with them on, and asserts

* the acceptance criterion: the plan-cached path is >= 2x faster,
* determinism: the campaign *and* executor verdict tables are
  byte-identical with plans on or off, on all four backends,
* the cache actually worked: every allocator visit of the cached passes
  was served by replay (100 % hit rate, zero fallbacks).
"""

from __future__ import annotations

import time

from repro.targets import CampaignSpec, build_campaign, campaignable_dut_names, run_campaign
from repro.teststand import GLOBAL_PLAN_CACHE, format_table

#: The acceptance bar for the plan-cached serial path on the family workload.
SPEEDUP_BAR = 2.0

#: Fault subset for the (expensive) four-backend determinism sweep.
BACKENDS = (("serial", 1, 0), ("thread", 4, 0), ("process", 2, 0), ("async", 1, 8))


def _family_campaigns(fast: bool):
    # use_vm=False: this benchmark measures (and asserts 100 % replay on)
    # the PR 5 plan-*replay* path specifically; with the VM engaged the
    # runs never touch the PlanCursor.  The VM path has its own benchmark
    # (test_bench_vm.py).
    return [
        build_campaign(CampaignSpec(
            dut=dut, use_plans=fast, reuse_stands=fast, use_vm=False))
        for dut in campaignable_dut_names()
    ]


def _run_family(campaigns) -> list:
    return [campaign.run(faults) for campaign, faults in campaigns]


def _measure() -> tuple[float, float, list, list]:
    slow_campaigns = _family_campaigns(False)
    fast_campaigns = _family_campaigns(True)

    GLOBAL_PLAN_CACHE.clear()
    t0 = time.perf_counter()
    slow_results = _run_family(slow_campaigns)
    uncached = time.perf_counter() - t0

    GLOBAL_PLAN_CACHE.clear()
    fast_results = _run_family(fast_campaigns)  # first pass pays the compiles
    t0 = time.perf_counter()
    fast_results = _run_family(fast_campaigns)
    cached = time.perf_counter() - t0

    return uncached, cached, slow_results, fast_results


def test_plan_cached_family_campaign(benchmark, print_block):
    uncached, cached, slow_results, fast_results = benchmark.pedantic(
        _measure, rounds=1, iterations=1)

    # Determinism before speed: identical fault tables per DUT either way.
    for slow, fast in zip(slow_results, fast_results):
        assert slow.table() == fast.table()
        assert slow.execution.verdict_table() == fast.execution.verdict_table()

    # Every allocator visit of the timed cached pass replayed from a plan.
    stats = GLOBAL_PLAN_CACHE.stats.snapshot()
    assert stats["action_fallbacks"] == 0, stats
    assert stats["action_replays"] > 0, stats

    # The acceptance criterion: >= 2x on the family workload.  A loaded CI
    # runner can distort one measurement, so the bar gets two further
    # attempts (best ratio counts) before failing.
    speedup = uncached / cached
    for _ in range(2):
        if speedup >= SPEEDUP_BAR:
            break
        uncached, cached, _, _ = _measure()
        speedup = max(speedup, uncached / cached)
    assert speedup >= SPEEDUP_BAR, (
        f"plan-cached serial campaign only {speedup:.2f}x faster than the "
        f"uncached path (uncached {uncached:.3f} s, cached {cached:.3f} s)"
    )

    print_block(
        "A5: compiled execution plans on the E4 family workload (serial)",
        format_table(
            ("path", "wall", "speedup"),
            (
                ("full search, fresh stands", f"{uncached * 1e3:.0f} ms", "1.0x"),
                ("plan replay, pooled stands", f"{cached * 1e3:.0f} ms",
                 f"{speedup:.2f}x"),
            ),
        )
        + f"\n\nplan cache: {stats['plans_compiled']} compile(s), "
          f"{stats['action_replays']} action replays, "
          f"{stats['action_fallbacks']} fallbacks "
          f"({stats['hit_rate']:.0%} hit rate); verdict tables byte-identical.",
    )


def test_plan_determinism_across_backends(print_block):
    """All four backends x plans on/off agree byte-for-byte (wiper DUT)."""
    tables = {}
    for backend, jobs, concurrency in BACKENDS:
        for fast in (True, False):
            result = run_campaign(CampaignSpec(
                dut="wiper_ecu", backend=backend, jobs=jobs,
                concurrency=concurrency, use_plans=fast, reuse_stands=fast,
            ))
            tables[(backend, fast)] = (
                result.table(), result.execution.verdict_table())
    reference = tables[("serial", True)]
    mismatched = [key for key, value in tables.items() if value != reference]
    assert not mismatched, f"verdict tables diverged for {mismatched}"

    print_block(
        "A5b: plan fast-path determinism across backends",
        "8 combinations (serial/thread/process/async x plans on/off) "
        "produced byte-identical campaign and executor verdict tables.",
    )
