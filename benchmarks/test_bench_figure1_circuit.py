"""F1 - the paper's test-circuit figure, regenerated from the wiring model.

The figure shows the DVM reaching the two lamp pins through Sw1.1/Sw1.2 and
the two resistor decades reaching the four door-switch pins through the
Mx1..Mx4 multiplexers.  The rendering here is derived from the connection
matrix (not a hard-coded picture) and is cross-checked against it; the
benchmark additionally verifies that the electrical path of the figure works:
with the lamp driven, the DVM route measures ~UBATT across INT_ILL_F/R.
"""

from __future__ import annotations

from conftest import interior_harness

from repro.paper import render_test_circuit
from repro.teststand import build_paper_stand


def _build_and_probe():
    stand = build_paper_stand()
    drawing = render_test_circuit(stand)
    harness = interior_harness()
    harness.send_can_signal("NIGHT", 1)
    harness.apply_resistance("DS_FL", 0.5)
    lamp_on = harness.measure_voltage(("INT_ILL_F", "INT_ILL_R"))
    harness.release_resistance("DS_FL")
    lamp_off = harness.measure_voltage(("INT_ILL_F", "INT_ILL_R"))
    return stand, drawing, lamp_on, lamp_off


def test_figure1_circuit(benchmark, print_block):
    stand, drawing, lamp_on, lamp_off = benchmark(_build_and_probe)

    # Every switching element of the paper's figure appears in the drawing.
    for label in ("Sw1.1", "Sw1.2", "Mx1.1", "Mx1.2", "Mx4.1", "Mx4.2"):
        assert label in drawing
    for pin in ("INT_ILL_F", "INT_ILL_R", "DS_FL", "DS_FR", "DS_RL", "DS_RR"):
        assert pin in drawing
    # The electrical path of the figure behaves like the real circuit would.
    assert 0.7 * 12.0 <= lamp_on <= 1.1 * 12.0
    assert lamp_off < 0.3 * 12.0

    print_block(
        "F1: test circuit (paper figure), generated from the connection model",
        drawing + f"\n\nDVM reading with lamp on : {lamp_on:6.2f} V"
                  f"\nDVM reading with lamp off: {lamp_off:6.2f} V",
    )
