"""E3 - defect detection: do preserved test cases catch past bugs?

Nine realistic defects are injected into the interior-illumination ECU.  The
paper's own sheet is expected to detect most but not all of them (it never
exercises the front-right door at night); the extended suite that a project
accumulates over time detects all of them.  The campaigns are declarative
:class:`repro.targets.CampaignSpec` objects expanded through the target
registry; the benchmark measures one full campaign of the paper suite
(baseline + 9 faulty ECUs).
"""

from __future__ import annotations

from repro.paper import extended_suite, paper_suite
from repro.targets import CampaignSpec, run_campaign


def _campaign(suite):
    return run_campaign(CampaignSpec(suite=suite, stand="paper"))


def test_fault_campaign(benchmark, print_block):
    paper_result = benchmark.pedantic(_campaign, args=(paper_suite(),), rounds=1, iterations=1)
    extended_result = _campaign(extended_suite())

    assert paper_result.baseline_clean and extended_result.baseline_clean
    assert paper_result.detection_rate >= 8 / 9
    assert "ignores_ds_fr" in paper_result.undetected
    assert extended_result.detection_rate == 1.0

    print_block(
        "E3: fault-injection campaign (paper suite vs. extended suite)",
        "paper suite (1 sheet):\n" + paper_result.table()
        + f"\n  -> detection rate {paper_result.detection_rate:.0%}\n\n"
        + "extended suite (4 sheets):\n" + extended_result.table()
        + f"\n  -> detection rate {extended_result.detection_rate:.0%}\n\n"
          "paper claim: preserving and extending test knowledge catches the bugs "
          "of the past -> reproduced (the extended suite closes the DS_FR gap).",
    )
