"""A4 - async stand multiplexing: one worker drives many slow stands.

The economic claim behind the async backend: on *latency-simulated* stands
(every instrument call costs a real command round-trip, here 3 ms) a serial
worker's wall clock grows linearly with the number of stands, while one
async worker overlaps the I/O waits of all stands and stays roughly flat up
to its concurrency limit.  The benchmark runs the paper's interior
illumination script on 1 / 2 / 4 / 8 copies of the paper stand with 3 ms
instrument latency, once on the serial backend and once on the async
backend (concurrency 8), and asserts

* determinism: byte-identical verdict tables from both backends at every
  stand count,
* the multiplex win: >= 3x speedup over serial at 8 stands.
"""

from __future__ import annotations

import functools

from conftest import interior_harness

from repro.core import Compiler
from repro.dut import InteriorLightEcu
from repro.paper import paper_signal_set, paper_suite
from repro.teststand import (
    AsyncExecutor,
    SerialExecutor,
    build_paper_stand,
    expand_jobs,
    format_table,
    run_jobs,
)

IO_DELAY = 0.003
CONCURRENCY = 8
STAND_COUNTS = (1, 2, 4, 8)


def _jobs_for(stands: int):
    script = Compiler().compile_test(paper_suite(), "interior_illumination")
    slow_stand = functools.partial(build_paper_stand, io_delay=IO_DELAY)
    return expand_jobs(
        (script,),
        paper_signal_set(),
        {f"stand{i}": slow_stand for i in range(stands)},
        interior_harness,
        {"baseline": InteriorLightEcu},
    )


def _sweep():
    runs = []
    for stands in STAND_COUNTS:
        jobs = _jobs_for(stands)
        serial = run_jobs(jobs, SerialExecutor())
        async_ = run_jobs(jobs, AsyncExecutor(concurrency=CONCURRENCY))
        runs.append((stands, serial, async_))
    return runs


def test_async_multiplexes_slow_stands(benchmark, print_block):
    runs = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    rows = []
    for stands, serial, async_ in runs:
        # Determinism first: the backends agree byte-for-byte at every width.
        assert serial.verdict_table() == async_.verdict_table()
        assert serial.ok and async_.ok
        rows.append((
            str(stands),
            f"{serial.wall_time * 1e3:.0f} ms",
            f"{async_.wall_time * 1e3:.0f} ms",
            f"{serial.wall_time / async_.wall_time:.1f}x",
        ))

    # The acceptance criterion: one async worker at concurrency 8 beats a
    # serial worker by >= 3x on 8 latency-simulated stands.  Typical margin
    # is ~6-7x; a loaded CI runner can distort one measurement, so the bar
    # gets up to three attempts (best result counts) before failing.
    stands, serial, async_ = runs[-1]
    assert stands == 8
    speedup = serial.wall_time / async_.wall_time
    for _ in range(2):
        if speedup >= 3.0:
            break
        jobs = _jobs_for(8)
        serial = run_jobs(jobs, SerialExecutor())
        async_ = run_jobs(jobs, AsyncExecutor(concurrency=CONCURRENCY))
        speedup = max(speedup, serial.wall_time / async_.wall_time)
    assert speedup >= 3.0, (
        f"async multiplexing speedup {speedup:.1f}x below the 3x bar "
        f"(serial {serial.wall_time:.3f} s, async {async_.wall_time:.3f} s)"
    )

    print_block(
        f"A4: async multiplexing of latency-simulated stands "
        f"({IO_DELAY * 1e3:.0f} ms per instrument call, concurrency {CONCURRENCY})",
        format_table(("stands", "serial wall", "async wall", "speedup"), rows)
        + "\n\nidentical verdict tables on both backends at every width: True",
    )
