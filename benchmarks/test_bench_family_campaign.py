"""E4 - family coverage: the registry campaigns every bundled ECU.

Before the :mod:`repro.targets` registry only two of the five bundled
body-electronics ECUs could run fault-injection campaigns; the wiring
knowledge of the others lived nowhere.  This benchmark runs the bundled
suite of *every* campaignable DUT against its fault catalogue on an
adaptable stand and asserts

* every baseline is clean (the suites describe the healthy models),
* every fault the catalogue expects to be caught is caught,
* no fault escapes at all any more: the current-measurement and
  tightened-timing sheets closed the four formerly catalogued knowledge
  gaps (fast_relay_weak, travel_slightly_slow, drl_dim, unlocks_at_speed),
  and the extended interior suite catches the paper's own ignores_ds_fr.

The measured callable is the whole family batch - the analogue of the
single-DUT E3 campaign across every campaignable DUT.
"""

from __future__ import annotations

from repro.targets import CampaignSpec, campaignable_dut_names, run_campaign
from repro.teststand import format_table


def _campaign_family():
    # stand=None picks a stand carrying each DUT's adapter automatically.
    return {dut: run_campaign(CampaignSpec(dut=dut))
            for dut in campaignable_dut_names()}


def test_family_campaign(benchmark, print_block):
    results = benchmark.pedantic(_campaign_family, rounds=1, iterations=1)

    assert set(results) == {"interior_light_ecu", "central_locking_ecu",
                            "wiper_ecu", "window_lifter_ecu",
                            "exterior_light_ecu", "instrument_cluster_ecu"}
    rows = []
    for dut, result in sorted(results.items()):
        assert result.baseline_clean, f"{dut}: healthy ECU fails its own suite"
        # Every fault the catalogue expects to be caught must be caught; a
        # detection the catalogue did not expect (the extended interior
        # suite closing the DS_FR gap) is a pleasant surprise, not an error.
        missed = [o.fault.name for o in result.outcomes
                  if o.fault.expected_detected and not o.detected]
        assert not missed, f"{dut}: expected detections missed: {missed}"
        # Since PR 3's current/timing sheets the whole family detects 100 %
        # of its seeded faults - there is no catalogued escape left.
        assert not result.undetected, f"{dut}: new gaps: {result.undetected}"
        rows.append((dut, str(len(result.outcomes)),
                     f"{result.detection_rate:.0%}",
                     ", ".join(result.undetected) or "-"))

    print_block(
        "E4: fault campaigns across the whole body-electronics family",
        format_table(("DUT", "faults", "detected", "known gaps"), rows)
        + "\n\nregistry claim: every bundled ECU is campaignable through "
          "repro.targets -> reproduced (6/6 DUTs, clean baselines).",
    )
