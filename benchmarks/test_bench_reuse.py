"""E2 - the knowledge preservation / reuse claim.

The paper argues that requirement-level test definitions let a high
percentage of test knowledge be reused across projects.  Three "projects"
share one status vocabulary here: the paper's interior-light sheet, the
extended interior-light suite and the central-locking suite.  The benchmark
computes the pairwise reuse metrics and the stand-independence ratio of the
compiled scripts (1.0 = no stand-specific identifier leaks into a script).
"""

from __future__ import annotations

from repro.analysis import compare_suites, script_portability, vocabulary_reuse
from repro.core import Compiler
from repro.paper import extended_suite, locking_suite, paper_suite
from repro.teststand import build_paper_stand, format_table


def _measure_reuse():
    suites = {
        "paper": paper_suite(),
        "extended": extended_suite(),
        "locking": locking_suite(),
    }
    pairwise = {
        (a, b): compare_suites(suites[a], suites[b])
        for a in suites for b in suites if a < b
    }
    usage = vocabulary_reuse(list(suites.values()))
    stand = build_paper_stand()
    stand_entities = list(stand.resources.names) + [
        route.connector.label for route in stand.connections]
    portability = {
        name: min(
            script_portability(script, stand_entities)
            for script in Compiler().compile_suite(suite)
        )
        for name, suite in suites.items()
    }
    return pairwise, usage, portability


def test_reuse_metrics(benchmark, print_block):
    pairwise, usage, portability = benchmark(_measure_reuse)

    interior_vs_locking = pairwise[("locking", "paper")]
    # The shared vocabulary carries over to the unrelated second project.
    assert {"open", "closed", "lo", "ho"} <= set(interior_vs_locking.shared_statuses)
    assert interior_vs_locking.status_jaccard >= 0.4
    # Paper vs. extended interior-light suites share everything.
    assert pairwise[("extended", "paper")].status_jaccard == 1.0
    # Core statuses are used by every project; compiled scripts contain no
    # stand-specific identifiers at all.
    assert usage["lo"] == 1.0 and usage["ho"] == 1.0
    assert all(value == 1.0 for value in portability.values())

    rows = [(f"{a} vs {b}", f"{r.status_jaccard:.2f}", f"{r.method_jaccard:.2f}",
             f"{r.assignment_jaccard:.2f}", str(len(r.shared_statuses)))
            for (a, b), r in sorted(pairwise.items())]
    usage_rows = [(status, f"{fraction:.0%}") for status, fraction in usage.items()]
    print_block(
        "E2: reuse metrics across three projects sharing one vocabulary",
        format_table(("pair", "status J", "method J", "assignment J", "shared"), rows)
        + "\n\nstatus usage across projects:\n"
        + format_table(("status", "used by"), usage_rows)
        + "\n\nstand-independence of compiled scripts: "
        + ", ".join(f"{k}={v:.2f}" for k, v in portability.items()),
    )
