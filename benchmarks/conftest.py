"""Shared helpers for the reproduction benchmarks.

Every benchmark regenerates one artefact of the paper (a table, the figure,
the XML snippet) or measures one of its qualitative claims (portability,
reuse, defect detection) and prints the reproduced content next to the
expectation, so ``pytest benchmarks/ --benchmark-only -s`` doubles as the
experiment log for EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

# Re-exported so the benchmarks keep one import point for the paper wiring.
from repro.paper import interior_harness  # noqa: F401


@pytest.fixture
def print_block(capsys):
    """Print a titled block outside of pytest's capture (visible with -s)."""
    def _print(title: str, body: str) -> None:
        with capsys.disabled():
            print()
            print("#" * 78)
            print(f"# {title}")
            print("#" * 78)
            print(body)
    return _print
