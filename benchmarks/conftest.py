"""Shared helpers for the reproduction benchmarks.

Every benchmark regenerates one artefact of the paper (a table, the figure,
the XML snippet) or measures one of its qualitative claims (portability,
reuse, defect detection) and prints the reproduced content next to the
expectation, so ``pytest benchmarks/ --benchmark-only -s`` doubles as the
experiment log for EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.dut import InteriorLightEcu, LoadSpec, TestHarness, body_can_database


def interior_harness(ecu=None) -> TestHarness:
    """The paper's wiring (lamp between INT_ILL_F and INT_ILL_R) around an ECU."""
    return TestHarness(ecu or InteriorLightEcu(), body_can_database(),
                       loads=(LoadSpec("INT_ILL_F", "INT_ILL_R", 6.0),))


@pytest.fixture
def print_block(capsys):
    """Print a titled block outside of pytest's capture (visible with -s)."""
    def _print(title: str, body: str) -> None:
        with capsys.disabled():
            print()
            print("#" * 78)
            print(f"# {title}")
            print("#" * 78)
            print(body)
    return _print
