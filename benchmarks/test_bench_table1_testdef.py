"""T1 - the paper's test definition sheet, regenerated and executed.

Reproduces the paper's first table (the ten-step interior-illumination test)
from the library's data model and executes it end to end on the paper's test
stand; the paper's implicit "expected result" is that a conforming ECU passes
every step, including the 300 s timeout pair (steps 7/8).
The benchmark measures the wall-clock cost of one full compile + execute run.
"""

from __future__ import annotations

from repro.paper import (
    paper_test_definition,
    render_test_definition_table,
    run_paper_example,
)


def test_table1_regenerate_and_execute(benchmark, print_block):
    table = render_test_definition_table()

    def full_run():
        return run_paper_example()

    script, result = benchmark(full_run)

    definition = paper_test_definition()
    assert len(definition) == 10
    assert definition.total_duration == 309.0
    assert result.passed
    assert all(step.passed for step in result.steps)

    verdict_rows = "\n".join(
        f"  step {step.number:>2}  dt={step.duration:>6}s  -> {step.verdict}"
        for step in result.steps
    )
    print_block(
        "T1: test definition sheet (paper table 1) + execution verdicts",
        table + "\n\nexecution on paper_stand:\n" + verdict_rows
        + f"\n  overall: {result.verdict} ({result.duration:g} s simulated)",
    )
