"""T2 - the paper's status table, regenerated and resolved against UBATT.

Reproduces the status table (7 rows) and shows how the relative ``Lo``/``Ho``
limits resolve at three supply voltages - the mechanism behind the paper's
``(0.7*ubatt)`` XML attributes.  The benchmark measures status-table
construction plus parameter resolution for all statuses.
"""

from __future__ import annotations

from repro.core.values import LimitExpression
from repro.methods import default_registry
from repro.paper import paper_status_table, render_status_table
from repro.teststand import format_table


def _resolve_all(ubatt_values=(9.0, 12.0, 16.0)):
    table = paper_status_table()
    registry = default_registry()
    resolved = []
    for status in table:
        spec = registry.get(status.method)
        params = spec.params_from_status(status)
        for ubatt in ubatt_values:
            values = {
                name: LimitExpression(text).evaluate({"ubatt": ubatt})
                for name, text in params.items()
                if name != "data"
            }
            resolved.append((status.name, ubatt, values))
    return table, resolved


def test_table2_regenerate_and_resolve(benchmark, print_block):
    table, resolved = benchmark(_resolve_all)

    assert len(table) == 7
    assert list(table.names) == ["Off", "Open", "Closed", "0", "1", "Lo", "Ho"]
    ho_12 = next(values for name, ubatt, values in resolved if name == "Ho" and ubatt == 12.0)
    assert abs(ho_12["u_min"] - 8.4) < 1e-9
    assert abs(ho_12["u_max"] - 13.2) < 1e-9
    lo_9 = next(values for name, ubatt, values in resolved if name == "Lo" and ubatt == 9.0)
    assert abs(lo_9["u_max"] - 2.7) < 1e-9

    rows = []
    for name, ubatt, values in resolved:
        if name in ("Lo", "Ho"):
            rows.append((name, f"{ubatt:g} V",
                         ", ".join(f"{k}={v:g}" for k, v in sorted(values.items()))))
    print_block(
        "T2: status table (paper table 2) + UBATT-relative limit resolution",
        render_status_table() + "\n\n"
        + format_table(("status", "UBATT", "resolved limits"), rows),
    )
