"""A2 - scaling: generation and execution throughput vs. script size.

The paper's method targets whole vehicle programmes (many components, many
sheets), so the tool chain must stay fast as sheets grow.  This benchmark
sweeps the number of steps and measures (a) sheet -> XML generation and
(b) XML -> execution on the paper stand, reporting steps per second.
"""

from __future__ import annotations

import time

from conftest import interior_harness

from repro.core import Compiler, script_from_string, script_to_string
from repro.core.testdef import TestDefinition, TestSuite
from repro.paper import paper_signal_set, paper_status_table
from repro.teststand import TestStandInterpreter, build_paper_stand, format_table


def _synthetic_suite(steps: int) -> TestSuite:
    test = TestDefinition("synthetic", signals=("NIGHT", "DS_FL", "INT_ILL"))
    test.add_step(0.01, {"NIGHT": "1", "DS_FL": "Closed", "INT_ILL": "Lo"})
    for index in range(1, steps):
        if index % 2 == 1:
            test.add_step(0.01, {"DS_FL": "Open", "INT_ILL": "Ho"})
        else:
            test.add_step(0.01, {"DS_FL": "Closed", "INT_ILL": "Lo"})
    return TestSuite("interior_light_ecu", paper_signal_set(), paper_status_table(), (test,))


def _measure(steps: int):
    suite = _synthetic_suite(steps)
    start = time.perf_counter()
    script = Compiler().compile_test(suite, "synthetic")
    xml_text = script_to_string(script)
    compile_seconds = time.perf_counter() - start

    start = time.perf_counter()
    interpreter = TestStandInterpreter(build_paper_stand(), interior_harness(),
                                       paper_signal_set())
    result = interpreter.run(script_from_string(xml_text))
    execute_seconds = time.perf_counter() - start
    assert result.passed
    return steps, compile_seconds, execute_seconds, len(xml_text)


def run_sweep(sizes=(10, 50, 200, 800)):
    return [_measure(steps) for steps in sizes]


def test_scaling_sweep(benchmark, print_block):
    measurements = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = []
    for steps, compile_seconds, execute_seconds, xml_bytes in measurements:
        rows.append((
            str(steps),
            f"{compile_seconds * 1e3:.1f} ms",
            f"{steps / compile_seconds:,.0f}",
            f"{execute_seconds * 1e3:.1f} ms",
            f"{steps / execute_seconds:,.0f}",
            f"{xml_bytes / 1024:.0f} KiB",
        ))
    # Throughput must not collapse with size (no worse than 5x slowdown per step
    # between the smallest and the largest sheet).
    small = measurements[0]
    large = measurements[-1]
    assert (large[1] / large[0]) < 5 * (small[1] / small[0]) + 1e-3
    assert (large[2] / large[0]) < 5 * (small[2] / small[0]) + 1e-3

    print_block(
        "A2: generation / execution throughput vs. sheet size",
        format_table(("steps", "compile", "steps/s", "execute", "steps/s", "XML size"), rows),
    )
