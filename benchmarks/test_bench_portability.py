"""E1 - the test-stand independence claim.

The same XML text compiled from the paper's sheet is executed on three very
different virtual stands (the paper's stand, a big crossbar rack, a minimal
hand-wired bench) with different instruments, wiring and supply voltages.
The claim holds if every stand reports the identical PASS verdict while using
its own resources.  The stands and the DUT wiring come from the
:mod:`repro.targets` registry; the per-stand runs are one executor batch
(:func:`repro.teststand.run_across_stands`) and the benchmark measures one
serial batch of three executions.
"""

from __future__ import annotations

from repro.core import script_from_string, script_to_string
from repro.paper import compile_paper_script
from repro.targets import get_dut, stand_factories_for
from repro.teststand import format_table, run_across_stands

TARGET = get_dut("interior_light_ecu")
STAND_FACTORIES = stand_factories_for(TARGET)


def _run_everywhere():
    xml_text = script_to_string(compile_paper_script())
    return run_across_stands(
        script_from_string(xml_text),
        TARGET.signals_factory(),
        STAND_FACTORIES,
        TARGET.harness_factory,
        TARGET.ecu_factory,
    )


def test_portability_across_stands(benchmark, print_block):
    report = benchmark(_run_everywhere)
    # Display-only stand metadata is built outside the measured callable.
    results = [(STAND_FACTORIES[job_result.job.stand_label](), job_result.result)
               for job_result in report]

    assert len(results) == 3
    assert all(result.passed for _, result in results)
    resources_used = [set(result.resources_used()) for _, result in results]
    # Each stand used its own equipment - there is no overlap in resource names
    # between the paper stand and the other two.
    assert resources_used[0] != resources_used[1]
    assert resources_used[0] != resources_used[2]

    rows = [
        (stand.name, f"{stand.supply_voltage:g} V", str(len(stand.resources)),
         ", ".join(sorted(result.resources_used())), str(result.verdict))
        for stand, result in results
    ]
    print_block(
        "E1: identical XML script on three different test stands",
        format_table(("stand", "UBATT", "#resources", "resources used", "verdict"), rows)
        + "\n\npaper claim: component tests are independent of the test stand -> "
          "reproduced (identical verdicts).",
    )
