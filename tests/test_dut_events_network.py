"""Tests for the discrete-event kernel and the electrical network solver."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import HarnessError
from repro.dut.events import EventScheduler
from repro.dut.events import SchedulerError
from repro.dut.network import GROUND, Network


class TestEventScheduler:
    def test_fires_in_time_order(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule_at(2.0, lambda: fired.append("b"))
        scheduler.schedule_at(1.0, lambda: fired.append("a"))
        scheduler.schedule_at(3.0, lambda: fired.append("c"))
        scheduler.advance_to(2.5)
        assert fired == ["a", "b"]
        scheduler.advance_to(10.0)
        assert fired == ["a", "b", "c"]

    def test_ties_fire_in_insertion_order(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule_at(1.0, lambda: fired.append(1))
        scheduler.schedule_at(1.0, lambda: fired.append(2))
        scheduler.advance_to(1.0)
        assert fired == [1, 2]

    def test_cancel(self):
        scheduler = EventScheduler()
        fired = []
        event = scheduler.schedule_in(1.0, lambda: fired.append("x"))
        event.cancel()
        scheduler.advance_to(5.0)
        assert not fired and event.cancelled and not event.fired

    def test_callback_can_schedule_followup(self):
        scheduler = EventScheduler()
        fired = []

        def first():
            fired.append(scheduler.now)
            scheduler.schedule_in(1.0, lambda: fired.append(scheduler.now))

        scheduler.schedule_at(1.0, first)
        scheduler.advance_to(5.0)
        assert fired == [1.0, 2.0]

    def test_schedule_in_past_rejected(self):
        scheduler = EventScheduler()
        scheduler.advance_to(5.0)
        with pytest.raises(SchedulerError):
            scheduler.schedule_at(4.0, lambda: None)
        with pytest.raises(SchedulerError):
            scheduler.schedule_in(-1.0, lambda: None)

    def test_advance_backwards_is_noop(self):
        scheduler = EventScheduler()
        scheduler.advance_to(5.0)
        assert scheduler.advance_to(3.0) == 0
        assert scheduler.now == 5.0

    def test_cancel_all(self):
        scheduler = EventScheduler()
        for delay in (1, 2, 3):
            scheduler.schedule_in(delay, lambda: None)
        scheduler.cancel_all()
        assert scheduler.pending_count == 0
        assert scheduler.advance_to(10) == 0

    @given(st.lists(st.floats(0.0, 1000.0), min_size=1, max_size=30))
    def test_all_events_fire_in_nondecreasing_time(self, times):
        scheduler = EventScheduler()
        fired_times = []
        for t in times:
            scheduler.schedule_at(t, (lambda tt=t: fired_times.append(scheduler.now)))
        scheduler.advance_to(1001.0)
        assert len(fired_times) == len(times)
        assert fired_times == sorted(fired_times)
        assert scheduler.now == 1001.0

    @given(st.lists(st.floats(0.0, 100.0), min_size=1, max_size=20),
           st.floats(0.0, 100.0))
    def test_no_event_after_horizon_fires(self, times, horizon):
        scheduler = EventScheduler()
        fired = []
        for t in times:
            scheduler.schedule_at(t, (lambda tt=t: fired.append(tt)))
        scheduler.advance_to(horizon)
        assert all(t <= horizon for t in fired)
        assert sorted(fired) == sorted(t for t in times if t <= horizon)


class TestNetwork:
    def test_voltage_divider(self):
        network = Network()
        network.add_voltage_source("vin", GROUND, 12.0)
        network.add_resistor("vin", "mid", 1000.0)
        network.add_resistor("mid", GROUND, 1000.0)
        assert network.voltage_between("mid") == pytest.approx(6.0, rel=1e-3)

    def test_thevenin_source_with_load(self):
        network = Network()
        network.add_thevenin("out", 12.0, 0.2)
        network.add_resistor("out", GROUND, 6.0)
        expected = 12.0 * 6.0 / 6.2
        assert network.voltage_between("out") == pytest.approx(expected, rel=1e-3)

    def test_floating_node_reads_zero(self):
        network = Network()
        network.add_voltage_source("vbat", GROUND, 12.0)
        network.node("floating")
        assert network.voltage_between("floating") == pytest.approx(0.0, abs=1e-3)

    def test_infinite_resistor_is_open(self):
        network = Network()
        network.add_voltage_source("vin", GROUND, 10.0)
        network.add_resistor("vin", "out", math.inf)
        assert network.voltage_between("out") == pytest.approx(0.0, abs=1e-3)

    def test_differential_measurement(self):
        network = Network()
        network.add_voltage_source("a", GROUND, 8.0)
        network.add_voltage_source("b", GROUND, 3.0)
        assert network.voltage_between("a", "b") == pytest.approx(5.0, rel=1e-6)

    def test_unknown_node_rejected(self):
        network = Network()
        network.add_voltage_source("a", GROUND, 1.0)
        with pytest.raises(HarnessError):
            network.voltage_between("nonexistent")

    def test_zero_resistance_clamped_not_singular(self):
        network = Network()
        network.add_voltage_source("a", GROUND, 5.0)
        network.add_resistor("a", "b", 0.0)
        assert network.voltage_between("b") == pytest.approx(5.0, rel=1e-3)

    @given(st.floats(1.0, 1e5), st.floats(1.0, 1e5), st.floats(1.0, 50.0))
    def test_divider_formula_property(self, r_top, r_bottom, volts):
        network = Network()
        network.add_voltage_source("vin", GROUND, volts)
        network.add_resistor("vin", "mid", r_top)
        network.add_resistor("mid", GROUND, r_bottom)
        expected = volts * r_bottom / (r_top + r_bottom)
        assert network.voltage_between("mid") == pytest.approx(expected, rel=1e-3, abs=1e-6)
