"""Tests for the body-electronics family suites and fault catalogues."""

from __future__ import annotations

import pytest

from repro.analysis import (
    exterior_light_faults,
    window_lifter_faults,
    wiper_faults,
)
from repro.core import Compiler
from repro.paper import (
    exterior_light_suite,
    family_status_table,
    window_lifter_suite,
    wiper_suite,
)
from repro.targets import CampaignSpec, RunSpec, run_campaign, run_single

# Suite factory, fault catalogue and the formerly-escaped fault whose
# detection gap the current/timing sheets closed.
FAMILY = (
    (wiper_suite, wiper_faults, "fast_relay_weak"),
    (window_lifter_suite, window_lifter_faults, "travel_slightly_slow"),
    (exterior_light_suite, exterior_light_faults, "drl_dim"),
)


class TestFamilySuites:
    @pytest.mark.parametrize("suite_factory", [f for f, _, _ in FAMILY])
    @pytest.mark.parametrize("stand", ["big_rack", "minimal"])
    def test_suite_passes_on_adaptable_stands(self, suite_factory, stand):
        suite = suite_factory()
        for script in Compiler().compile_suite(suite):
            result = run_single(RunSpec(script=script, stand=stand))
            assert result.passed, f"{script.name} failed on {stand}"

    def test_family_reuses_shared_vocabulary(self):
        statuses = family_status_table()
        # Paper vocabulary survives...
        for shared in ("Off", "Open", "Closed", "0", "1", "Lo", "Ho"):
            assert shared in statuses
        # ...next to the family payload statuses.
        for new in ("IgnOn", "Interval", "Fast", "SwAuto", "Shut", "MidOpen",
                    "HalfOpen", "NoCurrent", "CoilCurrent", "LampCurrent"):
            assert new in statuses

    def test_current_statuses_are_relative_to_ubatt(self):
        # A driver sourcing into a fixed load draws a current proportional
        # to the supply, so the get_i windows must scale with UBATT exactly
        # like Lo/Ho - otherwise the suites would verdict differently on
        # the 12.5 V bench and the 13.5 V rack.
        statuses = family_status_table()
        for name in ("CoilCurrent", "LampCurrent"):
            status = statuses.get(name)
            assert status.method == "get_i"
            assert status.variable == "UBATT"

    def test_suite_sheet_counts(self):
        assert len(wiper_suite()) == 4
        assert len(window_lifter_suite()) == 3
        assert len(exterior_light_suite()) == 4

    def test_suites_survive_the_csv_workbook_roundtrip(self, tmp_path):
        from repro.sheets import load_suite, save_suite

        for suite_factory, _, _ in FAMILY:
            suite = suite_factory()
            directory = str(tmp_path / suite.dut)
            save_suite(suite, directory)
            loaded = load_suite(directory)
            assert loaded.dut == suite.dut
            originals = {s.name: s for s in Compiler().compile_suite(suite)}
            reloaded = {s.name: s for s in Compiler().compile_suite(loaded)}
            # CSV files load alphabetically, so only the sheet *set* is
            # stable; and within one step the sheet column order may permute
            # the actions (execution applies all stimuli before evaluating
            # the expectations, so order inside a step carries no meaning).
            assert sorted(reloaded) == sorted(originals)

            def canonical(script):
                return [
                    (step.number, step.duration,
                     sorted(step.actions, key=lambda a: a.signal))
                    for step in script.steps
                ]
            for name, original in originals.items():
                again = reloaded[name]
                assert canonical(again) == canonical(original)
                assert sorted(again.setup, key=lambda a: a.signal) == \
                    sorted(original.setup, key=lambda a: a.signal)


class TestFamilyFaultCatalogues:
    @pytest.mark.parametrize("suite_factory,faults_factory,closed_gap", FAMILY)
    def test_detection_matches_catalogue_expectations(
        self, suite_factory, faults_factory, closed_gap
    ):
        suite = suite_factory()
        result = run_campaign(CampaignSpec(dut=suite.dut, stand="big_rack"))
        assert result.baseline_clean
        for outcome in result.outcomes:
            assert outcome.as_expected, (
                f"{outcome.fault.name}: detected={outcome.detected}, "
                f"expected={outcome.fault.expected_detected}"
            )
        # The current/timing sheets closed every catalogued gap: nothing
        # escapes any more, and the formerly-escaped fault is now a
        # *documented* detection (expected_detected=True).
        assert result.undetected == ()
        assert closed_gap in result.detected
        assert faults_factory().get(closed_gap).expected_detected

    @pytest.mark.parametrize("faults_factory", [f for _, f, _ in FAMILY])
    def test_fault_factories_build_real_ecus(self, faults_factory):
        from repro.dut.base import EcuModel

        catalogue = faults_factory()
        assert len(catalogue) >= 6
        for fault in catalogue:
            assert isinstance(fault.build(), EcuModel)

    def test_detection_rates_are_stand_independent(self):
        for suite_factory, _, _ in FAMILY:
            dut = suite_factory().dut
            rates = {
                stand: run_campaign(
                    CampaignSpec(dut=dut, stand=stand)
                ).detection_rate
                for stand in ("big_rack", "minimal")
            }
            assert rates["big_rack"] == rates["minimal"], dut
