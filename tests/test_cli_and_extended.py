"""Tests for the CLI entry points and the extended / second-project suites."""

from __future__ import annotations

import os

import pytest

from repro.cli import main_compile, main_report, main_run
from repro.core import Compiler
from repro.paper import (
    build_locking_harness,
    extended_suite,
    locking_signal_set,
    locking_suite,
    paper_suite,
)
from repro.sheets import save_suite
from repro.teststand import TestStandInterpreter, build_big_rack


class TestCli:
    def test_compile_run_report_pipeline(self, tmp_path, capsys):
        workbook_dir = str(tmp_path / "workbook")
        out_dir = str(tmp_path / "scripts")
        save_suite(paper_suite(), workbook_dir)

        assert main_compile([workbook_dir, out_dir]) == 0
        script_path = os.path.join(out_dir, "interior_illumination.xml")
        assert os.path.exists(script_path)

        assert main_report([script_path]) == 0
        captured = capsys.readouterr()
        assert "interior_light_ecu" in captured.out

        assert main_run([script_path, "--quiet"]) == 0
        captured = capsys.readouterr()
        assert "PASS" in captured.out

    def test_run_on_other_stands(self, tmp_path, capsys):
        workbook_dir = str(tmp_path / "workbook")
        out_dir = str(tmp_path / "scripts")
        save_suite(paper_suite(), workbook_dir)
        main_compile([workbook_dir, out_dir])
        script_path = os.path.join(out_dir, "interior_illumination.xml")
        for stand in ("big_rack", "minimal"):
            assert main_run([script_path, "--stand", stand, "--quiet"]) == 0

    def test_run_unknown_dut_fails_cleanly(self, tmp_path, capsys):
        path = tmp_path / "alien.xml"
        path.write_text(
            '<?xml version="1.0"?><testscript name="t" dut="alien_ecu">'
            "<steps/></testscript>"
        )
        assert main_run([str(path)]) == 2
        assert "unknown DUT" in capsys.readouterr().err


class TestExtendedSuites:
    def test_extended_suite_passes_on_paper_stand(self):
        from repro.paper import build_paper_harness, paper_signal_set
        from repro.teststand import build_paper_stand

        suite = extended_suite()
        compiler = Compiler()
        for test in suite:
            script = compiler.compile_test(suite, test)
            interpreter = TestStandInterpreter(build_paper_stand(), build_paper_harness(),
                                               paper_signal_set())
            result = interpreter.run(script)
            assert result.passed, f"{test.name} failed"

    def test_extended_suite_has_four_sheets(self):
        assert len(extended_suite()) == 4

    def test_locking_suite_passes_on_big_rack(self):
        suite = locking_suite()
        compiler = Compiler()
        stand = build_big_rack(pins=("KEY_SW", "UNLOCK_SW", "LOCK_LED", "LOCK_ACT"))
        for test in suite:
            script = compiler.compile_test(suite, test)
            interpreter = TestStandInterpreter(stand, build_locking_harness(),
                                               locking_signal_set())
            result = interpreter.run(script)
            assert result.passed, f"{test.name} failed"

    def test_locking_suite_reuses_shared_statuses(self):
        suite = locking_suite()
        assert "Open" in suite.statuses and "Ho" in suite.statuses
        assert "Lock" in suite.statuses and "Locked" in suite.statuses
