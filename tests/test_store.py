"""Tests for repro.store: the persistent, queryable result store.

The acceptance bar from the campaign-as-a-service issue: a campaign
recorded into the store re-renders its verdict table **byte-identically**
after a round trip (serial and async backends, which must agree with each
other too), ``diff_runs`` of two identical campaigns is empty, queries
slice the history by DUT / stand / verdict / time, and two writer threads
sharing one sqlite file never corrupt or lose a run.
"""

from __future__ import annotations

import threading

import pytest

from repro.store import CaseRow, ResultStore, RunInfo, StoreError
from repro.targets import CampaignSpec, campaignable_dut_names, run_campaign


@pytest.fixture
def store_path(tmp_path):
    return str(tmp_path / "results.db")


@pytest.fixture(scope="module")
def recorded(tmp_path_factory):
    """One store carrying the same wiper campaign twice: serial and async."""
    path = str(tmp_path_factory.mktemp("store") / "family.db")
    serial = run_campaign(CampaignSpec(dut="wiper_ecu", store=path))
    asynced = run_campaign(CampaignSpec(
        dut="wiper_ecu", backend="async", jobs=4, store=path))
    return path, serial, asynced


def test_run_campaign_records_and_assigns_run_id(recorded):
    path, serial, asynced = recorded
    assert serial.store_run_id is not None
    assert asynced.store_run_id is not None
    assert serial.store_run_id != asynced.store_run_id
    store = ResultStore(path)
    assert set(store.run_ids()) == {serial.store_run_id,
                                    asynced.store_run_id}


def test_stored_run_rerenders_byte_identically(recorded):
    path, serial, asynced = recorded
    store = ResultStore(path)
    live = f"{serial.table()}\n{serial.summary()}"
    for result in (serial, asynced):
        run = store.get_run(result.store_run_id)
        # the campaign fault table + summary: what repro-campaign printed
        assert run.render() == f"{result.table()}\n{result.summary()}"
        # the per-job verdict table of the underlying execution report
        assert run.verdict_table() == result.execution.verdict_table()
        # the stored document is the exact serialized report
        assert run.execution_report().to_dict() == result.execution.to_dict()
        # serial and async campaigns agree with each other, stored or live
        assert run.render() == live


def test_diff_runs_of_identical_campaigns_is_empty(recorded):
    path, serial, asynced = recorded
    store = ResultStore(path)
    diff = store.diff_runs(serial.store_run_id, asynced.store_run_id)
    assert diff.empty
    assert diff.changed == ()
    assert diff.only_a == () and diff.only_b == ()
    assert "no verdict deltas" in diff.table()


def test_diff_runs_between_different_duts_reports_deltas(store_path):
    wiper = run_campaign(CampaignSpec(dut="wiper_ecu", store=store_path))
    other = run_campaign(CampaignSpec(dut="interior_light_ecu",
                                      store=store_path))
    store = ResultStore(store_path)
    diff = store.diff_runs(wiper.store_run_id, other.store_run_id)
    assert not diff.empty
    assert diff.only_a and diff.only_b  # disjoint job sets
    assert str(wiper.store_run_id) in diff.summary()


def test_list_runs_and_metadata(recorded):
    path, serial, asynced = recorded
    store = ResultStore(path)
    infos = store.list_runs(dut="wiper_ecu")
    assert all(isinstance(info, RunInfo) for info in infos)
    assert {info.run_id for info in infos} >= {serial.store_run_id,
                                               asynced.store_run_id}
    by_id = {info.run_id: info for info in infos}
    assert by_id[serial.store_run_id].backend == "serial"
    assert by_id[asynced.store_run_id].backend == "async"
    for info in infos:
        assert info.dut == "wiper_ecu"
        assert info.jobs == len(serial.execution.results)
        assert info.repro_version
    assert store.list_runs(limit=1)[0].run_id == max(store.run_ids())


def test_query_slices_by_dut_stand_and_verdict(recorded):
    path, serial, _ = recorded
    store = ResultStore(path)
    rows = store.query(dut="wiper_ecu")
    assert rows and all(isinstance(row, CaseRow) for row in rows)
    assert {row.dut for row in rows} == {"wiper_ecu"}
    # case-insensitive match, as the lint rule X-UNSTORABLE-RESULT warns
    assert len(store.query(dut="WIPER_ECU")) == len(rows)
    passes = store.query(dut="wiper_ecu", verdict="pass")
    assert passes and all(row.verdict == "pass" for row in passes)
    assert store.query(dut="no_such_dut") == []
    assert store.query(since=float("inf")) == []
    stands = {row.stand for row in rows}
    assert len(store.query(dut="wiper_ecu", stand=stands.pop())) == len(rows)


def test_get_unknown_run_raises(store_path):
    store = ResultStore(store_path)
    with pytest.raises(StoreError):
        store.get_run(999)
    with pytest.raises(StoreError):
        store.diff_runs(1, 2)


def test_family_history_accumulates(store_path):
    """The whole body-electronics family recorded into one store."""
    run_ids = []
    for dut in campaignable_dut_names():
        result = run_campaign(CampaignSpec(dut=dut, store=store_path))
        run_ids.append(result.store_run_id)
    store = ResultStore(store_path)
    assert store.run_ids() == tuple(sorted(run_ids))
    infos = store.list_runs()
    assert {info.dut for info in infos} == set(campaignable_dut_names())
    # every stored run still re-renders
    for run_id in run_ids:
        assert "fault campaign:" in store.get_run(run_id).render()


def test_concurrent_writers_share_one_store(store_path):
    """Two threads recording into the same sqlite file: no lost runs, no
    corruption, every stored report intact."""
    results = [run_campaign(CampaignSpec(dut="wiper_ecu")),
               run_campaign(CampaignSpec(dut="interior_light_ecu"))]
    store = ResultStore(store_path)
    per_thread = 4
    recorded_ids: list[list[int]] = [[], []]
    errors: list[Exception] = []

    def write(slot: int) -> None:
        try:
            for _ in range(per_thread):
                recorded_ids[slot].append(
                    store.record_campaign(results[slot]))
        except Exception as exc:  # surfaced on the main thread below
            errors.append(exc)

    threads = [threading.Thread(target=write, args=(slot,))
               for slot in (0, 1)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []
    all_ids = recorded_ids[0] + recorded_ids[1]
    assert len(all_ids) == 2 * per_thread
    assert len(set(all_ids)) == len(all_ids)
    assert store.run_ids() == tuple(sorted(all_ids))
    for slot in (0, 1):
        expected = results[slot].execution.to_dict()
        for run_id in recorded_ids[slot]:
            assert store.get_run(run_id).execution_report().to_dict() \
                == expected


def test_content_keyed_dedup_of_scripts_and_catalogues(recorded):
    """Recording the same campaign twice interns scripts/catalogue once."""
    import sqlite3

    path, serial, asynced = recorded
    with sqlite3.connect(path) as connection:
        scripts = connection.execute(
            "SELECT COUNT(*) FROM scripts").fetchone()[0]
        catalogues = connection.execute(
            "SELECT COUNT(*) FROM catalogues").fetchone()[0]
        campaigns = connection.execute(
            "SELECT COUNT(*) FROM campaigns").fetchone()[0]
    document = serial.execution.to_dict()
    assert scripts == len(document["scripts"])  # not 2x: content-keyed
    assert catalogues == 1
    # serial and async runs differ in backend/jobs, hence two campaign rows
    assert campaigns == 2


def test_memory_store_supports_threads():
    result = run_campaign(CampaignSpec(dut="wiper_ecu"))
    store = ResultStore(":memory:")
    ids = []

    def write():
        ids.append(store.record_campaign(result))

    threads = [threading.Thread(target=write) for _ in range(2)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert sorted(ids) == list(store.run_ids())
    assert store.get_run(ids[0]).render() == \
        f"{result.table()}\n{result.summary()}"


def test_composition_provenance_round_trips(store_path):
    """A composed campaign records which composition produced the run."""
    result = run_campaign(CampaignSpec(
        composition="lock+cluster",
        faults=("cluster.speed_tx_truncated", "lock.no_auto_lock"),
        store=store_path,
    ))
    store = ResultStore(store_path)
    run = store.get_run(result.store_run_id)
    assert run.campaign["composition"] == "lock+cluster"
    assert run.campaign["dut"] is None
    assert run.render() == f"{result.table()}\n{result.summary()}"
    # Single-DUT campaigns keep NULL composition provenance.
    single = run_campaign(CampaignSpec(
        dut="wiper_ecu", faults=("motor_stuck_off",), store=store_path))
    assert store.get_run(single.store_run_id).campaign["composition"] is None
