"""The unified cross-backend parity matrix.

One test asserts the whole determinism contract: for every campaignable
registered target (all bundled DUTs plus every multi-ECU composition) the
campaign verdict table is byte-identical across

    {serial, thread, process, async} x {plans on, off} x {vm on, off}.

The reference cell is the serial backend with plans and VM on - the exact
configuration ``repro-campaign`` defaults to - computed once per target
and compared against every other cell.  This module consolidates the
byte-identity assertions that previously lived in ``test_executor``,
``test_async_executor``, ``test_plan`` and ``test_vm``.
"""

from __future__ import annotations

import pytest

from parity import (
    BACKENDS,
    chaos_spec_for,
    spec_for,
    target_names,
    verdict_tables,
)

TARGETS = target_names()

_REFERENCE: dict[str, tuple[str, str]] = {}


def reference(target: str) -> tuple[str, str]:
    """The target's serial / plans-on / vm-on tables, computed once."""
    if target not in _REFERENCE:
        _REFERENCE[target] = verdict_tables(spec_for(target))
    return _REFERENCE[target]


class TestRegistry:
    def test_matrix_covers_duts_and_compositions(self):
        """The matrix must span both registries; an empty axis would turn
        the whole module into a silent no-op."""
        assert "interior_light_ecu" in TARGETS
        assert "lock+cluster" in TARGETS
        assert len(TARGETS) >= 7

    @pytest.mark.parametrize("target", TARGETS)
    def test_reference_baseline_is_clean(self, target):
        """A dirty reference would make every parity cell vacuous: all
        backends agreeing on a broken verdict is not determinism worth
        shipping."""
        from repro.targets import run_campaign

        result = run_campaign(spec_for(target))
        assert result.baseline_clean, target
        assert (result.table(), result.execution.verdict_table()) \
            == reference(target)


class TestParityMatrix:
    @pytest.mark.parametrize("use_vm", (True, False), ids=("vm", "novm"))
    @pytest.mark.parametrize("use_plans", (True, False),
                             ids=("plans", "noplans"))
    @pytest.mark.parametrize("backend,jobs,concurrency", BACKENDS,
                             ids=[b[0] for b in BACKENDS])
    @pytest.mark.parametrize("target", TARGETS)
    def test_verdict_tables_byte_identical(self, target, backend, jobs,
                                           concurrency, use_plans, use_vm):
        spec = spec_for(target, backend, jobs, concurrency,
                        use_plans=use_plans, use_vm=use_vm)
        assert verdict_tables(spec) == reference(target)


class TestChaosParity:
    """The chaos parity gate: a fixed seed injecting only *recoverable*
    faults (transient first-attempt instrument I/O errors) must leave the
    verdict tables byte-identical to the clean reference on every backend.
    The schedule is a pure function of ``(seed, job_id, attempt)``, so the
    same faults fire whether jobs run serially, on threads, in a process
    pool or interleaved on the async multiplexer."""

    TARGET = "interior_light_ecu"

    @pytest.mark.parametrize("backend,jobs,concurrency", BACKENDS,
                             ids=[b[0] for b in BACKENDS])
    def test_chaotic_verdicts_byte_identical(self, backend, jobs,
                                             concurrency):
        from repro.targets import run_campaign

        spec = chaos_spec_for(self.TARGET, backend, jobs, concurrency)
        result = run_campaign(spec)
        assert (result.table(), result.execution.verdict_table()) \
            == reference(self.TARGET)
        # The gate is vacuous unless the chaos actually bit: at least one
        # job must have needed a retry to reach the identical verdicts.
        assert any(jr.attempts > 1 for jr in result.execution.results)
