"""The unified cross-backend parity matrix.

One test asserts the whole determinism contract: for every campaignable
registered target (all bundled DUTs plus every multi-ECU composition) the
campaign verdict table is byte-identical across

    {serial, thread, process, async} x {plans on, off} x {vm on, off}.

The reference cell is the serial backend with plans and VM on - the exact
configuration ``repro-campaign`` defaults to - computed once per target
and compared against every other cell.  This module consolidates the
byte-identity assertions that previously lived in ``test_executor``,
``test_async_executor``, ``test_plan`` and ``test_vm``.
"""

from __future__ import annotations

import pytest

from parity import BACKENDS, spec_for, target_names, verdict_tables

TARGETS = target_names()

_REFERENCE: dict[str, tuple[str, str]] = {}


def reference(target: str) -> tuple[str, str]:
    """The target's serial / plans-on / vm-on tables, computed once."""
    if target not in _REFERENCE:
        _REFERENCE[target] = verdict_tables(spec_for(target))
    return _REFERENCE[target]


class TestRegistry:
    def test_matrix_covers_duts_and_compositions(self):
        """The matrix must span both registries; an empty axis would turn
        the whole module into a silent no-op."""
        assert "interior_light_ecu" in TARGETS
        assert "lock+cluster" in TARGETS
        assert len(TARGETS) >= 7

    @pytest.mark.parametrize("target", TARGETS)
    def test_reference_baseline_is_clean(self, target):
        """A dirty reference would make every parity cell vacuous: all
        backends agreeing on a broken verdict is not determinism worth
        shipping."""
        from repro.targets import run_campaign

        result = run_campaign(spec_for(target))
        assert result.baseline_clean, target
        assert (result.table(), result.execution.verdict_table()) \
            == reference(target)


class TestParityMatrix:
    @pytest.mark.parametrize("use_vm", (True, False), ids=("vm", "novm"))
    @pytest.mark.parametrize("use_plans", (True, False),
                             ids=("plans", "noplans"))
    @pytest.mark.parametrize("backend,jobs,concurrency", BACKENDS,
                             ids=[b[0] for b in BACKENDS])
    @pytest.mark.parametrize("target", TARGETS)
    def test_verdict_tables_byte_identical(self, target, backend, jobs,
                                           concurrency, use_plans, use_vm):
        spec = spec_for(target, backend, jobs, concurrency,
                        use_plans=use_plans, use_vm=use_vm)
        assert verdict_tables(spec) == reference(target)
