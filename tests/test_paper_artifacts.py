"""Tests that pin the paper's artefacts: tables, XML snippet, example semantics."""

from __future__ import annotations

import pytest

from repro.core import script_from_string, script_to_string, signal_fragment
from repro.paper import (
    PAPER_TEST_NAME,
    compile_paper_script,
    paper_status_table,
    paper_suite,
    paper_test_definition,
    paper_xml_snippet_action,
    render_connection_matrix,
    render_resource_table,
    render_status_table,
    render_test_circuit,
    render_test_definition_table,
)
from repro.teststand import build_paper_stand


class TestTable1TestDefinition:
    def test_row_and_column_counts(self):
        test = paper_test_definition()
        assert len(test) == 10
        assert test.columns == ("IGN_ST", "DS_FL", "DS_FR", "NIGHT", "INT_ILL")

    def test_key_cells_match_paper(self):
        test = paper_test_definition()
        rows = {int(row[0]): row for row in test.rows()}
        header = test.header()
        col = {name: header.index(name) for name in header}
        assert rows[0][col["IGN_ST"]] == "Off"
        assert rows[0][col["NIGHT"]] == "0"
        assert rows[4][col["NIGHT"]] == "1"
        assert rows[4][col["INT_ILL"]] == "Ho"
        assert rows[7][col["dt"]] == "280"
        assert rows[8][col["dt"]] == "25"
        assert rows[9][col["INT_ILL"]] == "Lo"

    def test_rendered_table_contains_remarks(self):
        text = render_test_definition_table()
        assert "day: no interior" in text
        assert "off after 300s" in text


class TestTable2StatusTable:
    def test_seven_statuses(self):
        table = paper_status_table()
        assert list(table.names) == ["Off", "Open", "Closed", "0", "1", "Lo", "Ho"]

    def test_method_bindings_match_paper(self):
        table = paper_status_table()
        assert table.get("Off").method == "put_can"
        assert table.get("Open").method == "put_r"
        assert table.get("Closed").method == "put_r"
        assert table.get("Lo").method == "get_u"
        assert table.get("Ho").method == "get_u"

    def test_ho_factors(self):
        ho = paper_status_table().get("Ho")
        assert ho.variable == "UBATT"
        assert ho.minimum == pytest.approx(0.7)
        assert ho.maximum == pytest.approx(1.1)

    def test_lo_factors(self):
        lo = paper_status_table().get("Lo")
        assert lo.minimum == 0.0 and lo.maximum == pytest.approx(0.3)

    def test_rendered_table(self):
        text = render_status_table()
        assert "put_can" in text and "UBATT" in text and "0001B" in text


class TestTable3Resources:
    def test_paper_rows(self):
        rows = build_paper_stand().resource_rows()
        dvm = next(row for row in rows if row[0] == "Ress1")
        assert dvm[1:4] == ("get_u", "u", "-60") and dvm[4] == "60" and dvm[5] == "V"
        dec1 = next(row for row in rows if row[0] == "Ress2")
        assert dec1[1] == "put_r" and dec1[4] == "1000000"
        dec2 = next(row for row in rows if row[0] == "Ress3")
        assert dec2[4] == "200000"

    def test_rendered_table(self):
        text = render_resource_table()
        assert "Ress1" in text and "Ohm" in text


class TestTable4ConnectionMatrix:
    def test_all_paper_cells(self):
        stand = build_paper_stand()
        rows = {row[0]: row for row in stand.connection_rows()}
        header = stand.connections.header(
            ("INT_ILL_F", "INT_ILL_R", "DS_FL", "DS_FR", "DS_RL", "DS_RR"))
        col = {name: header.index(name) for name in header[1:]}
        assert rows["Ress1"][col["INT_ILL_F"]] == "Sw1.1"
        assert rows["Ress1"][col["INT_ILL_R"]] == "Sw1.2"
        for index, pin in enumerate(("DS_FL", "DS_FR", "DS_RL", "DS_RR"), start=1):
            assert rows["Ress2"][col[pin]] == f"Mx{index}.2"
            assert rows["Ress3"][col[pin]] == f"Mx{index}.1"

    def test_rendered_matrix(self):
        text = render_connection_matrix()
        assert "Mx1.2" in text and "Sw1.1" in text


class TestFigure1Circuit:
    def test_rendering_reflects_stand(self):
        text = render_test_circuit()
        assert "Ress1" in text and "INT_ILL_F" in text
        assert "CAN bus" in text
        assert "DS_RR" in text

    def test_rendering_derives_from_connection_matrix(self):
        stand = build_paper_stand()
        text = render_test_circuit(stand)
        for route in stand.connections:
            assert route.connector.label in text


class TestXmlSnippet:
    def test_fragment_matches_paper(self):
        fragment = signal_fragment(paper_xml_snippet_action())
        assert fragment.splitlines()[0] == '<signal name="int_ill">'
        assert 'u_max="(1.1*ubatt)"' in fragment and 'u_min="(0.7*ubatt)"' in fragment

    def test_generated_script_contains_equivalent_statement(self):
        script = compile_paper_script()
        text = script_to_string(script)
        assert '<signal name="int_ill">' in text
        assert 'u_min="(0.7*ubatt)"' in text and 'u_max="(1.1*ubatt)"' in text
        # Round-trip: the generated XML re-parses to the identical script.
        assert script_from_string(text) == script

    def test_ho_step_action_semantics(self):
        script = compile_paper_script()
        action = script.steps[4].actions_for("int_ill")[0]
        limits_low = action.call.param("u_min")
        assert limits_low == "(0.7*ubatt)"
        paper_action = paper_xml_snippet_action()
        assert dict(action.call.params) == dict(paper_action.call.params)


class TestSuiteBundle:
    def test_suite_name_and_validation(self):
        suite = paper_suite()
        assert PAPER_TEST_NAME in suite
        suite.validate()

    def test_workbook_rendering(self):
        from repro.paper import paper_workbook

        workbook = paper_workbook()
        assert {"signals", "status"} <= {name.lower() for name in workbook.sheet_names}
        text = workbook.get("test_interior_illumination").to_text()
        assert "Ho" in text and "280" in text
