"""Tests for repro.core.values: numbers, intervals, limit expressions."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import ExpressionError, ValueError_
from repro.core.values import (
    INFINITY,
    Interval,
    LimitExpression,
    Quantity,
    format_binary,
    format_number,
    parse_binary,
    parse_number,
)


class TestParseNumber:
    def test_plain_integer(self):
        assert parse_number("42") == 42.0

    def test_decimal_point(self):
        assert parse_number("0.5") == 0.5

    def test_decimal_comma(self):
        assert parse_number("0,5") == 0.5

    def test_scientific_notation(self):
        assert parse_number("1,00E+06") == 1.0e6

    def test_negative(self):
        assert parse_number("-3,2") == -3.2

    def test_inf_token(self):
        assert parse_number("INF") == INFINITY
        assert parse_number("inf") == INFINITY

    def test_negative_inf(self):
        assert parse_number("-INF") == -INFINITY

    def test_float_passthrough(self):
        assert parse_number(1.25) == 1.25

    def test_empty_with_allow(self):
        assert parse_number("", allow_empty=True) is None
        assert parse_number(None, allow_empty=True) is None

    def test_empty_without_allow_raises(self):
        with pytest.raises(ValueError_):
            parse_number("")

    def test_garbage_raises(self):
        with pytest.raises(ValueError_):
            parse_number("0001B")

    def test_two_commas_rejected(self):
        with pytest.raises(ValueError_):
            parse_number("1,2,3")


class TestFormatNumber:
    def test_integer_drops_decimal(self):
        assert format_number(5.0) == "5"

    def test_fraction_kept(self):
        assert format_number(0.5) == "0.5"

    def test_decimal_comma(self):
        assert format_number(0.5, decimal_comma=True) == "0,5"

    def test_infinity(self):
        assert format_number(math.inf) == "INF"
        assert format_number(-math.inf) == "-INF"

    def test_none_is_empty(self):
        assert format_number(None) == ""

    @given(st.floats(allow_nan=False, allow_infinity=False, width=32))
    def test_roundtrip(self, value):
        assert parse_number(format_number(float(value))) == pytest.approx(float(value), rel=1e-6, abs=1e-6)

    @given(st.floats(allow_nan=False, allow_infinity=False, width=32))
    def test_roundtrip_decimal_comma(self, value):
        text = format_number(float(value), decimal_comma=True)
        assert parse_number(text) == pytest.approx(float(value), rel=1e-6, abs=1e-6)


class TestBinary:
    def test_paper_literal(self):
        assert parse_binary("0001B") == 1

    def test_binary_multi_bit(self):
        assert parse_binary("1010B") == 10

    def test_hex(self):
        assert parse_binary("1AH") == 26

    def test_decimal(self):
        assert parse_binary("7") == 7

    def test_format_padding(self):
        assert format_binary(1) == "0001B"
        assert format_binary(10) == "1010B"

    def test_negative_rejected(self):
        with pytest.raises(ValueError_):
            format_binary(-1)

    def test_garbage_rejected(self):
        with pytest.raises(ValueError_):
            parse_binary("xyz")

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_roundtrip(self, value):
        assert parse_binary(format_binary(value)) == value


class TestQuantity:
    def test_str_with_unit(self):
        assert str(Quantity(5, "V")) == "5 V"

    def test_float_conversion(self):
        assert float(Quantity(3.3, "V")) == 3.3

    def test_with_value_keeps_unit(self):
        assert Quantity(1, "Ohm").with_value(2).unit == "Ohm"

    def test_compatibility(self):
        assert Quantity(1, "V").compatible_with(Quantity(2, "V"))
        assert Quantity(1, "V").compatible_with(Quantity(2, ""))
        assert not Quantity(1, "V").compatible_with(Quantity(2, "A"))


class TestInterval:
    def test_contains(self):
        assert Interval(0, 1).contains(0.5)
        assert Interval(0, 1).contains(0)
        assert Interval(0, 1).contains(1)
        assert not Interval(0, 1).contains(1.01)

    def test_contains_with_tolerance(self):
        assert Interval(0, 1).contains(1.05, tolerance=0.1)

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ValueError_):
            Interval(2, 1)

    def test_scaled(self):
        scaled = Interval(0.7, 1.1).scaled(12.0)
        assert scaled.low == pytest.approx(8.4)
        assert scaled.high == pytest.approx(13.2)

    def test_scaled_negative_factor_swaps(self):
        scaled = Interval(1, 2).scaled(-1)
        assert scaled.low == -2 and scaled.high == -1

    def test_widened(self):
        widened = Interval(0, 1).widened(0.5)
        assert widened.low == -0.5 and widened.high == 1.5

    def test_intersects(self):
        assert Interval(0, 2).intersects(Interval(1, 3))
        assert not Interval(0, 1).intersects(Interval(2, 3))

    def test_clamp(self):
        assert Interval(0, 1).clamp(5) == 1
        assert Interval(0, 1).clamp(-5) == 0
        assert Interval(0, 1).clamp(0.5) == 0.5

    def test_midpoint_and_width(self):
        assert Interval(2, 4).midpoint == 3
        assert Interval(2, 4).width == 2

    @given(st.floats(-1e6, 1e6), st.floats(-1e6, 1e6), st.floats(-1e6, 1e6))
    def test_clamped_value_always_inside(self, a, b, x):
        low, high = min(a, b), max(a, b)
        interval = Interval(low, high)
        assert interval.contains(interval.clamp(x))

    @given(st.floats(0, 1e3), st.floats(1e3, 1e6), st.floats(0.1, 100))
    def test_scaling_preserves_containment(self, low, high, factor):
        interval = Interval(low, high)
        mid = interval.midpoint
        assert interval.scaled(factor).contains(mid * factor, tolerance=1e-6 * factor)


class TestLimitExpression:
    def test_paper_form(self):
        expr = LimitExpression("(0.7*ubatt)")
        assert expr.variables == frozenset({"ubatt"})
        assert expr.evaluate({"ubatt": 12.0}) == pytest.approx(8.4)

    def test_case_insensitive_variables(self):
        assert LimitExpression("(0.7*UBATT)").evaluate({"ubatt": 10}) == pytest.approx(7.0)

    def test_constant(self):
        expr = LimitExpression("5000")
        assert expr.is_constant
        assert expr.evaluate() == 5000

    def test_decimal_comma_inside_expression(self):
        assert LimitExpression("(0,7*ubatt)").evaluate({"ubatt": 10}) == pytest.approx(7.0)

    def test_arithmetic(self):
        assert LimitExpression("(1+2)*3").evaluate() == 9
        assert LimitExpression("10/4").evaluate() == 2.5
        assert LimitExpression("-ubatt").evaluate({"ubatt": 5}) == -5

    def test_relative_constructor(self):
        assert LimitExpression.relative(0.7, "UBATT").text == "(0.7*ubatt)"

    def test_constant_constructor(self):
        assert LimitExpression.constant(5.0).text == "5"

    def test_inf_token(self):
        assert LimitExpression("INF").evaluate() == math.inf

    def test_missing_variable_raises(self):
        with pytest.raises(ExpressionError):
            LimitExpression("(0.7*ubatt)").evaluate({})

    def test_division_by_zero_raises(self):
        with pytest.raises(ExpressionError):
            LimitExpression("1/0").evaluate()

    def test_function_calls_rejected(self):
        with pytest.raises(ExpressionError):
            LimitExpression("__import__('os')")

    def test_attribute_access_rejected(self):
        with pytest.raises(ExpressionError):
            LimitExpression("ubatt.real")

    def test_comparison_rejected(self):
        with pytest.raises(ExpressionError):
            LimitExpression("1 < 2")

    def test_empty_rejected(self):
        with pytest.raises(ExpressionError):
            LimitExpression("  ")

    def test_equality_and_hash(self):
        assert LimitExpression("(0.7*ubatt)") == LimitExpression("(0.7*ubatt)")
        assert hash(LimitExpression("5")) == hash(LimitExpression("5"))

    @given(st.floats(0.01, 10), st.floats(0.1, 100))
    def test_relative_evaluates_to_product(self, factor, ubatt):
        expr = LimitExpression.relative(factor, "ubatt")
        expected = parse_number(format_number(factor)) * ubatt
        assert expr.evaluate({"ubatt": ubatt}) == pytest.approx(expected, rel=1e-9)
