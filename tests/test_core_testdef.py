"""Tests for test steps, test definitions and suites."""

from __future__ import annotations

import pytest

from repro.core.errors import DefinitionError
from repro.core.testdef import StatusAssignment, TestDefinition, TestStep, TestSuite
from repro.paper import paper_signal_set, paper_status_table


class TestStatusAssignment:
    def test_str(self):
        assert str(StatusAssignment("DS_FL", "Open")) == "DS_FL=Open"

    def test_empty_signal_rejected(self):
        with pytest.raises(DefinitionError):
            StatusAssignment("", "Open")

    def test_empty_status_rejected(self):
        with pytest.raises(DefinitionError):
            StatusAssignment("DS_FL", " ")


class TestTestStep:
    def test_basic(self):
        step = TestStep(0, 0.5, (StatusAssignment("DS_FL", "Open"),), remark="hello")
        assert step.status_for("ds_fl") == "Open"
        assert step.status_for("DS_FR") is None
        assert step.signals == ("DS_FL",)

    def test_negative_duration_rejected(self):
        with pytest.raises(DefinitionError):
            TestStep(0, -1.0)

    def test_negative_number_rejected(self):
        with pytest.raises(DefinitionError):
            TestStep(-1, 0.5)

    def test_duplicate_signal_rejected(self):
        with pytest.raises(DefinitionError):
            TestStep(0, 0.5, (StatusAssignment("A", "x"), StatusAssignment("a", "y")))

    def test_with_assignment_replaces(self):
        step = TestStep(0, 0.5, (StatusAssignment("A", "x"),))
        updated = step.with_assignment("A", "y")
        assert updated.status_for("A") == "y"
        assert step.status_for("A") == "x"  # original untouched


class TestTestDefinition:
    def test_paper_sheet_shape(self, test_definition):
        assert len(test_definition) == 10
        assert test_definition.columns == ("IGN_ST", "DS_FL", "DS_FR", "NIGHT", "INT_ILL")
        assert test_definition.total_duration == pytest.approx(309.0)

    def test_paper_sheet_step_timing(self, test_definition):
        durations = [step.duration for step in test_definition]
        assert durations[7] == 280.0
        assert durations[8] == 25.0
        assert durations[0] == 0.5

    def test_statuses_and_signals_used(self, test_definition):
        assert set(test_definition.statuses_used()) == {"Off", "Closed", "Open", "0", "1", "Lo", "Ho"}
        assert set(test_definition.signals_used()) == {"IGN_ST", "DS_FL", "DS_FR", "NIGHT", "INT_ILL"}

    def test_rows_match_paper_layout(self, test_definition):
        rows = test_definition.rows()
        assert rows[0][0] == "0" and rows[0][1] == "0,5"
        header = test_definition.header()
        assert header[0] == "test step" and header[-1] == "remarks"
        assert len(rows[0]) == len(header)

    def test_add_step_auto_numbers(self):
        test = TestDefinition("t")
        test.add_step(0.5, {"A": "x"})
        test.add_step(1.0, {"A": "y"})
        assert [step.number for step in test] == [0, 1]

    def test_non_increasing_numbers_rejected(self):
        test = TestDefinition("t")
        test.append(TestStep(5, 0.5))
        with pytest.raises(DefinitionError):
            test.append(TestStep(5, 0.5))

    def test_empty_name_rejected(self):
        with pytest.raises(DefinitionError):
            TestDefinition("   ")

    def test_validate_against_paper_vocabulary(self, test_definition):
        test_definition.validate(paper_signal_set(), paper_status_table())

    def test_validate_unknown_signal(self):
        test = TestDefinition("t")
        test.add_step(0.5, {"NO_SUCH": "Open"})
        with pytest.raises(DefinitionError):
            test.validate(paper_signal_set(), paper_status_table())

    def test_validate_unknown_status(self):
        test = TestDefinition("t")
        test.add_step(0.5, {"DS_FL": "HalfOpen"})
        with pytest.raises(DefinitionError):
            test.validate(paper_signal_set(), paper_status_table())


class TestTestSuite:
    def test_paper_suite(self, suite):
        assert suite.dut == "interior_light_ecu"
        assert len(suite) == 1
        assert "interior_illumination" in suite
        suite.validate()

    def test_duplicate_test_rejected(self, suite, test_definition):
        with pytest.raises(DefinitionError):
            suite.add(test_definition)

    def test_unknown_test_raises(self, suite):
        with pytest.raises(DefinitionError):
            suite.get("nonexistent")

    def test_statuses_used_includes_initial(self, suite):
        used = set(suite.statuses_used())
        assert "Closed" in used and "Lo" in used

    def test_empty_dut_rejected(self, signals, statuses):
        with pytest.raises(DefinitionError):
            TestSuite("  ", signals, statuses)
