"""Tests for the worksheet front-end (grids, CSV, the three sheet types, workbooks)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import SheetError
from repro.paper import paper_suite, paper_workbook
from repro.sheets import (
    Workbook,
    Worksheet,
    build_signal_sheet,
    build_status_sheet,
    build_test_sheet,
    cell_reference,
    load_suite,
    parse_cell_reference,
    parse_signal_sheet,
    parse_status_sheet,
    parse_test_sheet,
    save_suite,
    suite_to_workbook,
    workbook_to_suite,
    worksheet_from_csv,
    worksheet_to_csv,
)


class TestCellReferences:
    @pytest.mark.parametrize("ref,expected", [
        ("A1", (0, 0)),
        ("B3", (2, 1)),
        ("Z1", (0, 25)),
        ("AA1", (0, 26)),
        ("c10", (9, 2)),
    ])
    def test_parse(self, ref, expected):
        assert parse_cell_reference(ref) == expected

    def test_invalid_reference(self):
        with pytest.raises(SheetError):
            parse_cell_reference("1A")
        with pytest.raises(SheetError):
            parse_cell_reference("A0")

    @given(st.integers(0, 200), st.integers(0, 200))
    def test_roundtrip(self, row, column):
        assert parse_cell_reference(cell_reference(row, column)) == (row, column)


class TestWorksheet:
    def test_growing_grid(self):
        sheet = Worksheet("s")
        sheet.set(2, 3, "x")
        assert sheet.get(2, 3) == "x"
        assert sheet.get(0, 0) == ""
        assert sheet.row_count == 3 and sheet.column_count == 4

    def test_reference_addressing(self):
        sheet = Worksheet("s")
        sheet.set_reference("B2", 5)
        assert sheet.get_reference("B2") == "5"

    def test_rows_padded(self):
        sheet = Worksheet("s", [["a"], ["b", "c"]])
        assert list(sheet.rows()) == [("a", ""), ("b", "c")]

    def test_find_header(self):
        sheet = Worksheet("s", [["junk"], ["status", "method", "nom"], ["Lo", "get_u", "0"]])
        row, columns = sheet.find_header("status", "method")
        assert row == 1 and columns["method"] == 1

    def test_find_header_missing_raises(self):
        sheet = Worksheet("s", [["a", "b"]])
        with pytest.raises(SheetError):
            sheet.find_header("status", "method")

    def test_is_empty_row_and_column(self):
        sheet = Worksheet("s", [["", " "], ["a", "b"]])
        assert sheet.is_empty_row(0) and not sheet.is_empty_row(1)
        assert sheet.column(1) == (" ", "b")

    def test_to_text_alignment(self):
        sheet = Worksheet("s", [["ab", "c"], ["d", "efg"]])
        text = sheet.to_text()
        assert "ab | c" in text

    def test_empty_name_rejected(self):
        with pytest.raises(SheetError):
            Worksheet("  ")


class TestCsvIo:
    def test_roundtrip_comma(self):
        sheet = Worksheet("s", [["a", "b,with,commas"], ["1", "2"]])
        text = worksheet_to_csv(sheet)
        parsed = worksheet_from_csv(text, "s")
        assert parsed == sheet

    def test_semicolon_sniffing(self):
        text = "status;method;nom\nLo;get_u;0\n"
        sheet = worksheet_from_csv(text, "status")
        assert sheet.get(0, 1) == "method"
        assert sheet.get(1, 1) == "get_u"

    @given(st.lists(st.lists(st.text(alphabet=st.characters(blacklist_categories=("Cs",),
                                                            blacklist_characters="\r\n"),
                                     max_size=12),
                             min_size=1, max_size=5),
                    min_size=1, max_size=8))
    def test_roundtrip_random_grids(self, rows):
        width = max(len(row) for row in rows)
        padded = [row + [""] * (width - len(row)) for row in rows]
        sheet = Worksheet("random", padded)
        # The delimiter is given explicitly: sniffing is only a convenience
        # for files whose cells do not themselves contain the other delimiter.
        text = worksheet_to_csv(sheet, delimiter=",")
        assert worksheet_from_csv(text, "random", delimiter=",") == sheet


class TestSheetParsing:
    def test_signal_sheet_roundtrip(self, signals):
        sheet = build_signal_sheet(signals)
        parsed = parse_signal_sheet(sheet, dut=signals.dut)
        assert parsed.names == signals.names
        assert parsed.get("INT_ILL").pins == ("INT_ILL_F", "INT_ILL_R")
        assert parsed.get("IGN_ST").message == "IGN_STATUS"
        assert parsed.initial_statuses == signals.initial_statuses

    def test_status_sheet_roundtrip(self, statuses):
        sheet = build_status_sheet(statuses)
        parsed = parse_status_sheet(sheet)
        assert parsed.names == statuses.names
        assert parsed.get("Ho").variable == "UBATT"
        assert parsed.get("Closed").nominal == float("inf")
        assert parsed.get("Off").nominal_text == "0001B"

    def test_test_sheet_roundtrip(self, test_definition):
        sheet = build_test_sheet(test_definition)
        parsed = parse_test_sheet(sheet, name=test_definition.name)
        assert len(parsed) == len(test_definition)
        assert parsed.columns == test_definition.columns
        assert parsed.steps[4].status_for("NIGHT") == "1"
        assert parsed.steps[7].duration == 280.0

    def test_signal_sheet_missing_name_raises(self):
        sheet = Worksheet("signals", [["signal", "direction", "kind"], ["", "in", "analog"]])
        with pytest.raises(SheetError):
            parse_signal_sheet(sheet)

    def test_status_sheet_missing_method_raises(self):
        sheet = Worksheet("status", [["status", "method"], ["Lo", ""]])
        with pytest.raises(SheetError):
            parse_status_sheet(sheet)

    def test_test_sheet_bad_step_number_raises(self):
        sheet = Worksheet("test_x", [["test step", "dt", "A", "remarks"],
                                     ["one", "0,5", "Open", ""]])
        with pytest.raises(SheetError):
            parse_test_sheet(sheet)

    def test_test_sheet_without_header_raises(self):
        sheet = Worksheet("test_x", [["nothing", "here"]])
        with pytest.raises(SheetError):
            parse_test_sheet(sheet)


class TestWorkbook:
    def test_paper_workbook_sheets(self):
        workbook = paper_workbook()
        assert "signals" in workbook and "status" in workbook
        assert len(workbook.test_sheets) == 1

    def test_workbook_suite_roundtrip(self, suite):
        workbook = suite_to_workbook(suite)
        rebuilt = workbook_to_suite(workbook)
        assert rebuilt.dut == suite.dut
        assert rebuilt.names == suite.names
        assert rebuilt.statuses.names == suite.statuses.names
        original = suite.get("interior_illumination")
        parsed = rebuilt.get("interior_illumination")
        assert [step.duration for step in parsed] == [step.duration for step in original]
        assert [step.assignments for step in parsed] == [step.assignments for step in original]

    def test_save_and_load_directory(self, suite, tmp_path):
        directory = str(tmp_path / "workbook")
        save_suite(suite, directory)
        rebuilt = load_suite(directory, name=suite.dut)
        assert rebuilt.dut == suite.dut
        assert rebuilt.names == suite.names

    def test_duplicate_sheet_rejected(self):
        workbook = Workbook("wb")
        workbook.add(Worksheet("signals"))
        with pytest.raises(SheetError):
            workbook.add(Worksheet("signals"))

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(SheetError):
            Workbook.load(str(tmp_path / "does_not_exist"))

    def test_unknown_sheet_raises(self):
        with pytest.raises(SheetError):
            Workbook("wb").get("status")
