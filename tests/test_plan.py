"""Tests for the compiled-execution-plan fast path (PR 5).

Covers the four guarantees the fast path rests on:

* verdict tables are byte-identical with plans on or off, on every backend,
* the plan cache is keyed by stand *topology*, so a changed stand never
  replays a stale plan,
* a pooled, :meth:`~repro.teststand.stands.TestStand.reset` stand behaves
  exactly like a fresh one (same job twice on one stand -> same results),
* the new input validation rejects nonsense knobs loudly.
"""

from __future__ import annotations

import json

import pytest

from repro.core import Compiler
from repro.core.errors import ConfigurationError, InstrumentError, ReproError
from repro.dut import InteriorLightEcu
from repro.instruments import Dvm
from repro.paper import interior_harness, paper_signal_set, paper_suite
from repro.targets import CampaignSpec
from repro.teststand import (
    GLOBAL_PLAN_CACHE,
    PlanCache,
    ProcessExecutor,
    TestStandInterpreter,
    build_minimal_bench,
    build_paper_stand,
    compile_plan,
    expand_jobs,
    json_report,
    make_executor,
    run_jobs,
)
from repro.teststand.executor import execute_job
from repro.teststand.plan import script_fingerprint, stand_fingerprint


def _paper_script():
    return Compiler().compile_test(paper_suite(), "interior_illumination")


def _action_for(script, entry):
    """The first script action matching a plan entry's (signal, method)."""
    actions = list(script.setup)
    for step in script.steps:
        actions.extend(step.actions)
    return next(
        a.call for a in actions
        if str(a.signal).lower() == entry.signal_key
        and a.method.lower() == entry.method_key
    )


def _interpreter(stand=None, *, plan_cache=GLOBAL_PLAN_CACHE):
    return TestStandInterpreter(
        stand or build_paper_stand(),
        interior_harness(InteriorLightEcu()),
        paper_signal_set(),
        plan_cache=plan_cache,
    )


# ---------------------------------------------------------------------------
# Byte-identical verdicts, plans on vs off, all four backends
# ---------------------------------------------------------------------------

class TestPlanDeterminism:
    """Plans-on/off byte-identity across all backends lives in
    ``test_parity_matrix.py``; here the plan-specific contracts."""

    def test_single_run_reports_identical(self):
        """Beyond verdicts: the full JSON report matches with plans on/off."""
        script = _paper_script()
        with_plans = _interpreter().run(script)
        without = _interpreter(plan_cache=None).run(script)
        a = json.loads(json_report(with_plans))
        b = json.loads(json_report(without))
        a.pop("wall_time_s", None), b.pop("wall_time_s", None)
        assert a == b

    def test_replays_are_counted(self):
        cache = PlanCache()
        script = _paper_script()
        stand = build_paper_stand()
        for _ in range(3):
            # use_vm=False: this test counts PlanCursor replays; the VM
            # fast path would serve the runs without touching the cursor.
            TestStandInterpreter(
                stand, interior_harness(InteriorLightEcu()), paper_signal_set(),
                plan_cache=cache, use_vm=False,
            ).run(script)
        stats = cache.stats.snapshot()
        assert stats["plans_compiled"] == 1
        assert stats["plan_hits"] == 2
        assert stats["action_fallbacks"] == 0
        assert stats["action_replays"] > 0


# ---------------------------------------------------------------------------
# Divergence and fallback: the safety net the byte-identity rests on
# ---------------------------------------------------------------------------

class TestPlanFallback:
    def _plan_for(self, script, stand):
        return compile_plan(
            script, paper_signal_set(), stand,
            policy="first_fit", registry=stand.registry,
            variables={"ubatt": stand.supply_voltage, "t": 0.0},
        )

    def test_cursor_diverges_on_mismatch_and_stays_diverged(self):
        stand = build_paper_stand()
        plan = self._plan_for(_paper_script(), stand)
        cursor = plan.cursor()
        first = plan.entries[0]
        assert cursor.take("definitely_not_a_signal", first.method_key) is None
        assert cursor.misses == 1
        # Even a now-matching visit must miss: the sequence is untrusted.
        assert cursor.take(first.signal_key, first.method_key) is None
        assert cursor.misses == 2 and cursor.hits == 0

    def test_replay_rejects_held_terminal(self):
        from repro.teststand import Allocator

        stand = build_paper_stand()
        script = _paper_script()
        plan = self._plan_for(script, stand)
        entry = next(e for e in plan.entries
                     if e.kind == "alloc" and e.allocation.routes)
        signals = paper_signal_set()
        signal = signals.get(entry.signal_key)
        call = _action_for(script, entry)
        allocator = Allocator(stand.resources, stand.connections,
                              registry=stand.registry)
        # Occupy every planned terminal for a *different* signal.
        resource = stand.resources.get(entry.allocation.resource)
        for route in entry.allocation.routes:
            allocator._held_terminals[(resource.key, route.terminal)] = "squatter"
        assert allocator.replay(signal, call, entry.allocation,
                                window=entry.window) is None
        # Without the squatter the identical replay commits.
        allocator.release("squatter")
        replayed = allocator.replay(signal, call, entry.allocation,
                                    window=entry.window)
        assert replayed is entry.allocation

    def test_replay_evaluates_window_itself_when_not_given(self):
        from repro.teststand import Allocator

        stand = build_paper_stand()
        script = _paper_script()
        plan = self._plan_for(script, stand)
        entry = next(e for e in plan.entries
                     if e.kind == "alloc" and e.allocation.routes)
        signals = paper_signal_set()
        signal = signals.get(entry.signal_key)
        call = _action_for(script, entry)
        allocator = Allocator(stand.resources, stand.connections,
                              registry=stand.registry)
        variables = {"ubatt": stand.supply_voltage, "t": 0.0}
        assert allocator.replay(signal, call, entry.allocation,
                                variables) is entry.allocation

    def test_wrong_plan_degrades_to_full_search_identically(self):
        """A cache handing out a plan for a *different* script must not
        change the verdicts - the cursor mismatches and every action falls
        back to the full search."""
        from repro.teststand.plan import PlanCache

        class WrongPlanCache(PlanCache):
            def __init__(self, wrong_plan):
                super().__init__()
                self._wrong = wrong_plan

            def plan_for(self, *args, **kwargs):
                self.stats.plan_hits += 1
                return self._wrong

        stand = build_paper_stand()
        script = _paper_script()
        # A "plan" whose entries describe a nonsense sequence.
        from repro.teststand.plan import ExecutionPlan, PlanEntry
        bogus = ExecutionPlan((
            PlanEntry("no_such_signal", "put_r", kind="open"),
        ) * 5)
        cache = WrongPlanCache(bogus)
        poisoned = TestStandInterpreter(
            stand, interior_harness(InteriorLightEcu()), paper_signal_set(),
            plan_cache=cache,
        ).run(script)
        clean = _interpreter(plan_cache=None).run(script)
        a, b = json.loads(json_report(poisoned)), json.loads(json_report(clean))
        a.pop("wall_time_s", None), b.pop("wall_time_s", None)
        assert a == b
        # The divergence is visible: every allocator visit fell back.
        assert cache.stats.action_replays == 0
        assert cache.stats.action_fallbacks > 0


# ---------------------------------------------------------------------------
# Cache keying: topology in, object identity out
# ---------------------------------------------------------------------------

class TestPlanInvalidation:
    def test_same_topology_shares_a_plan(self):
        """Two stands from the same builder fingerprint identically."""
        assert stand_fingerprint(build_paper_stand()) == \
            stand_fingerprint(build_paper_stand())

    def test_topology_differences_fingerprint_apart(self):
        reference = stand_fingerprint(build_paper_stand())
        assert stand_fingerprint(build_paper_stand(supply_voltage=9.0)) != reference
        assert stand_fingerprint(build_minimal_bench()) != reference

    def test_changed_stand_compiles_a_fresh_plan(self):
        cache = PlanCache()
        script = _paper_script()

        def _run(stand):
            TestStandInterpreter(
                stand, interior_harness(InteriorLightEcu()), paper_signal_set(),
                plan_cache=cache,
            ).run(script)

        _run(build_paper_stand())
        _run(build_paper_stand())  # same topology: cache hit
        assert cache.stats.plans_compiled == 1
        _run(build_paper_stand(supply_voltage=10.5))  # different topology
        assert cache.stats.plans_compiled == 2
        assert len(cache) == 2

    def test_script_fingerprint_tracks_content_not_identity(self):
        signals = paper_signal_set()
        assert script_fingerprint(_paper_script(), signals) == \
            script_fingerprint(_paper_script(), signals)

    def test_script_fingerprint_not_aliased_across_signal_sets(self):
        """The same script object against a re-pinned signal set must
        fingerprint afresh, not replay the first set's memo."""
        from repro.core.signals import Signal, SignalDirection, SignalKind, SignalSet

        script = _paper_script()
        original = paper_signal_set()
        repinned = SignalSet(
            [
                Signal(s.name, s.direction, s.kind,
                       pins=tuple(reversed(s.pins)) if len(s.pins) > 1 else s.pins,
                       message=s.message, initial_status=s.initial_status)
                for s in original
            ],
            dut=original.dut,
        )
        first = script_fingerprint(script, original)
        second = script_fingerprint(script, repinned)
        assert first != second
        # And the memo still serves the original set correctly afterwards.
        assert script_fingerprint(script, original) == first

    def test_registry_replace_invalidates_fingerprint(self):
        """register(..., replace=True) changes content without changing
        length; the fingerprint must notice."""
        from repro.methods import MethodRegistry, default_registry
        from repro.teststand.plan import registry_fingerprint

        registry = MethodRegistry(default_registry())
        before = registry_fingerprint(registry)
        spec = registry.get("get_u")
        replacement = type(spec)(
            name=spec.name, kind=spec.kind, attribute=spec.attribute,
            parameters=spec.parameters, description="refined",
        )
        registry.register(replacement, replace=True)
        # Same content re-registered: fingerprint recomputes (revision
        # bumped) and compares equal by content.
        assert registry_fingerprint(registry) == before

    def test_compiled_plan_covers_the_allocation_sequence(self):
        script = _paper_script()
        stand = build_paper_stand()
        plan = compile_plan(
            script, paper_signal_set(), stand,
            policy="first_fit", registry=stand.registry,
            variables={"ubatt": stand.supply_voltage, "t": 0.0},
        )
        kinds = {entry.kind for entry in plan.entries}
        assert len(plan) > 0
        # The paper script stimulates doors with put_r INF (open circuit)
        # and measures with the DVM (allocations): both entry kinds appear.
        assert kinds == {"alloc", "open"}

    def test_lru_eviction_is_bounded(self):
        cache = PlanCache(maxsize=1)
        script = _paper_script()
        for volts in (12.0, 11.0, 12.0):
            TestStandInterpreter(
                build_paper_stand(supply_voltage=volts),
                interior_harness(InteriorLightEcu()), paper_signal_set(),
                plan_cache=cache,
            ).run(script)
        assert len(cache) == 1
        # 12.0 was evicted by 11.0 and had to be recompiled.
        assert cache.stats.plans_compiled == 3


# ---------------------------------------------------------------------------
# Stand reuse / reset
# ---------------------------------------------------------------------------

class TestStandReuse:
    def test_same_stand_twice_identical_results(self):
        """reset() + fresh allocator/harness == freshly built stand."""
        script = _paper_script()
        stand = build_paper_stand()
        first = _interpreter(stand).run(script)
        stand.reset()
        second = _interpreter(stand).run(script)
        a, b = json.loads(json_report(first)), json.loads(json_report(second))
        a.pop("wall_time_s", None), b.pop("wall_time_s", None)
        assert a == b

    def test_no_allocation_or_mux_state_leaks(self):
        script = _paper_script()
        stand = build_paper_stand()
        interpreter = _interpreter(stand)
        interpreter.run(script)
        assert interpreter.allocator.held_terminals == {}
        stand.reset()
        fresh = _interpreter(stand)
        assert fresh.allocator.held_terminals == {}
        assert fresh.run(script).passed

    def test_executor_pool_reuses_one_stand_per_factory(self):
        builds = {"count": 0}

        def counting_factory():
            builds["count"] += 1
            return build_paper_stand()

        jobs = expand_jobs(
            (_paper_script(),), paper_signal_set(),
            {"stand": counting_factory}, interior_harness,
            {"baseline": InteriorLightEcu, "again": InteriorLightEcu},
        )
        report = run_jobs(jobs)
        assert report.ok and len(report) == 2
        assert builds["count"] == 1  # second job leased the pooled stand

    def test_reuse_opt_out_builds_per_job(self):
        builds = {"count": 0}

        def counting_factory():
            builds["count"] += 1
            return build_paper_stand()

        jobs = expand_jobs(
            (_paper_script(),), paper_signal_set(),
            {"stand": counting_factory}, interior_harness,
            {"baseline": InteriorLightEcu, "again": InteriorLightEcu},
            reuse_stands=False,
        )
        assert run_jobs(jobs).ok
        assert builds["count"] == 2

    def test_execute_job_returns_stand_after_failure(self):
        """A crashing harness factory must not leak the leased stand."""
        def broken_harness(ecu):
            raise RuntimeError("wiring loom on fire")

        job = expand_jobs(
            (_paper_script(),), paper_signal_set(),
            {"stand": build_paper_stand}, broken_harness,
            {"baseline": InteriorLightEcu},
        )[0]
        with pytest.raises(RuntimeError):
            execute_job(job)
        # The pooled stand is back and serves the next (healthy) job.
        healthy = expand_jobs(
            (_paper_script(),), paper_signal_set(),
            {"stand": build_paper_stand}, interior_harness,
            {"baseline": InteriorLightEcu},
        )[0]
        assert execute_job(healthy).passed


# ---------------------------------------------------------------------------
# Chunked process dispatch
# ---------------------------------------------------------------------------

class TestProcessChunking:
    def test_chunk_shapes(self):
        executor = ProcessExecutor(max_workers=2, chunk_size=3)
        jobs = expand_jobs(
            tuple(Compiler().compile_suite(paper_suite())) * 7,
            paper_signal_set(), {"stand": build_paper_stand},
            interior_harness, {"baseline": InteriorLightEcu},
        )
        chunks = executor._chunked(jobs)
        assert [len(c) for c in chunks] == [3, 3, 1]
        assert [position for chunk in chunks for position, _ in chunk] == list(range(7))

    def test_auto_chunking_covers_all_jobs(self):
        executor = ProcessExecutor(max_workers=4)
        jobs = list(range(100))  # shapes only; jobs are not executed
        chunks = executor._chunked(jobs)
        assert sum(len(c) for c in chunks) == 100
        assert all(len(c) >= 1 for c in chunks)

    def test_chunked_process_run_is_deterministic(self):
        jobs = expand_jobs(
            (_paper_script(),), paper_signal_set(),
            {"stand": build_paper_stand}, interior_harness,
            {"baseline": InteriorLightEcu, "rerun": InteriorLightEcu,
             "thrice": InteriorLightEcu},
        )
        serial = run_jobs(jobs)
        chunked = run_jobs(jobs, ProcessExecutor(max_workers=2, chunk_size=2))
        assert serial.verdict_table() == chunked.verdict_table()

    def test_invalid_chunk_size_rejected(self):
        with pytest.raises(ConfigurationError):
            ProcessExecutor(max_workers=2, chunk_size=0)


# ---------------------------------------------------------------------------
# Input validation
# ---------------------------------------------------------------------------

class TestValidation:
    def test_make_executor_rejects_nonpositive_jobs(self):
        for bad in (0, -3):
            with pytest.raises(ConfigurationError):
                make_executor("thread", bad)
        # ConfigurationError is both a ReproError and a ValueError.
        with pytest.raises(ValueError):
            make_executor("serial", 0)
        with pytest.raises(ReproError):
            make_executor("serial", 0)

    def test_make_executor_still_rejects_negative_concurrency(self):
        with pytest.raises(ValueError):
            make_executor("async", 1, concurrency=-1)
        assert make_executor("async", 1, concurrency=0).concurrency > 0

    def test_campaign_spec_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            CampaignSpec(dut="wiper_ecu", jobs=0)
        with pytest.raises(ValueError):
            CampaignSpec(dut="wiper_ecu", concurrency=-2)
        with pytest.raises(ValueError):
            CampaignSpec(dut="wiper_ecu", retries=-1)

    def test_instrument_rejects_bad_io_delay(self):
        with pytest.raises(InstrumentError):
            Dvm("bad", io_delay=-0.001)
        with pytest.raises(InstrumentError):
            Dvm("bad", io_delay=float("nan"))


class TestStandMutationGuard:
    def test_route_added_after_first_run_invalidates_fingerprint(self):
        """In-place topology mutation between runs must re-fingerprint."""
        from repro.teststand.connection import DirectWire, Route

        stand = build_paper_stand()
        before = stand_fingerprint(stand)
        stand.connections.add(
            Route("Ress1", "hi", "DS_FL", DirectWire("PATCH1"))
        )
        assert stand_fingerprint(stand) != before
