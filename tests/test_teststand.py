"""Tests for resources, connection matrices, the allocator and the stands."""

from __future__ import annotations

import pytest

from repro.core.errors import AllocationError, CapabilityError, RoutingError
from repro.core.script import MethodCall
from repro.core.signals import Signal, SignalDirection, SignalKind
from repro.instruments import CanInterface, Dvm, ResistorDecade
from repro.teststand import (
    ALLOCATION_POLICIES,
    Allocator,
    ConnectionMatrix,
    DirectWire,
    MuxChannel,
    Resource,
    ResourceTable,
    Route,
    Switch,
    build_big_rack,
    build_minimal_bench,
    build_paper_stand,
    full_crossbar,
)

DS_FL = Signal("DS_FL", SignalDirection.INPUT, SignalKind.RESISTIVE, pins=("DS_FL",))
DS_FR = Signal("DS_FR", SignalDirection.INPUT, SignalKind.RESISTIVE, pins=("DS_FR",))
DS_RL = Signal("DS_RL", SignalDirection.INPUT, SignalKind.RESISTIVE, pins=("DS_RL",))
INT_ILL = Signal("INT_ILL", SignalDirection.OUTPUT, SignalKind.ANALOG,
                 pins=("INT_ILL_F", "INT_ILL_R"))
NIGHT = Signal("NIGHT", SignalDirection.INPUT, SignalKind.BUS, message="LIGHT_SENSOR")

OPEN_CALL = MethodCall("put_r", {"r": "0.5", "r_min": "0", "r_max": "2"})
HO_CALL = MethodCall("get_u", {"u_min": "(0.7*ubatt)", "u_max": "(1.1*ubatt)"})
CAN_CALL = MethodCall("put_can", {"data": "1B"})


class TestResourceTable:
    def test_paper_stand_rows(self, paper_stand):
        rows = paper_stand.resource_rows()
        by_name = {row[0]: row for row in rows}
        assert by_name["Ress1"][1] == "get_u"
        assert by_name["Ress2"][1] == "put_r" and by_name["Ress2"][4] == "1000000"
        assert by_name["Ress3"][4] == "200000"

    def test_supporting(self, paper_stand):
        names = [r.name for r in paper_stand.resources.supporting("put_r")]
        assert names == ["Ress2", "Ress3"]

    def test_duplicate_rejected(self):
        table = ResourceTable((Resource("R1", Dvm("d")),))
        with pytest.raises(AllocationError):
            table.add(Resource("r1", Dvm("d2")))

    def test_unknown_lookup(self):
        with pytest.raises(AllocationError):
            ResourceTable().get("nope")

    def test_methods_supported(self, paper_stand):
        assert set(paper_stand.methods_supported()) == {"get_u", "put_r", "put_can", "get_can"}


class TestConnectionMatrix:
    def test_paper_matrix_shape(self, paper_stand):
        rows = paper_stand.connection_rows()
        by_resource = {row[0]: row for row in rows}
        assert by_resource["Ress1"][1] == "Sw1.1"   # INT_ILL_F
        assert by_resource["Ress1"][2] == "Sw1.2"   # INT_ILL_R
        assert by_resource["Ress2"][3] == "Mx1.2"   # DS_FL
        assert by_resource["Ress3"][3] == "Mx1.1"
        assert by_resource["Ress3"][6] == "Mx4.1"   # DS_RR

    def test_routes_for_pin_and_resource(self, paper_stand):
        matrix = paper_stand.connections
        assert {r.resource for r in matrix.routes_for_pin("DS_FL")} == {"Ress2", "Ress3"}
        assert len(matrix.routes_for_resource("Ress2")) == 4
        assert matrix.route_between("Ress1", "hi", "INT_ILL_F") is not None
        assert matrix.route_between("Ress1", "hi", "DS_FL") is None

    def test_duplicate_route_rejected(self):
        matrix = ConnectionMatrix()
        matrix.add(Route("R1", "a", "P1", Switch("S1")))
        with pytest.raises(RoutingError):
            matrix.add(Route("R1", "a", "P1", Switch("S2")))

    def test_mux_channel_requires_group(self):
        with pytest.raises(RoutingError):
            MuxChannel("Mx1.1", mux="")

    def test_full_crossbar_reaches_everything(self):
        resources = [Resource("A", Dvm("d")), Resource("B", ResistorDecade("r")),
                     Resource("C", CanInterface("c"))]
        matrix = full_crossbar(resources, ("P1", "P2"))
        # The CAN interface is skipped; DVM has 2 terminals, decade 1.
        assert len(matrix) == (2 + 1) * 2
        assert set(matrix.pins) == {"P1", "P2"}


class TestAllocator:
    def _allocator(self, stand, policy="first_fit"):
        return Allocator(stand.resources, stand.connections, policy=policy)

    def test_measurement_allocates_dvm_on_both_pins(self, paper_stand):
        allocator = self._allocator(paper_stand)
        allocation = allocator.allocate(INT_ILL, HO_CALL, {"ubatt": 12})
        assert allocation.resource == "Ress1"
        assert allocation.pins == ("INT_ILL_F", "INT_ILL_R")
        assert not allocation.persistent

    def test_stimulus_is_persistent_and_exclusive(self, paper_stand):
        allocator = self._allocator(paper_stand)
        first = allocator.allocate(DS_FL, OPEN_CALL, {})
        second = allocator.allocate(DS_FR, OPEN_CALL, {})
        assert first.resource != second.resource
        assert first.persistent and second.persistent

    def test_third_simultaneous_door_fails_on_paper_stand(self, paper_stand):
        allocator = self._allocator(paper_stand)
        allocator.allocate(DS_FL, OPEN_CALL, {})
        allocator.allocate(DS_FR, OPEN_CALL, {})
        with pytest.raises(RoutingError):
            allocator.allocate(DS_RL, OPEN_CALL, {})

    def test_release_frees_resource(self, paper_stand):
        allocator = self._allocator(paper_stand)
        allocator.allocate(DS_FL, OPEN_CALL, {})
        allocator.allocate(DS_FR, OPEN_CALL, {})
        allocator.release("ds_fl")
        third = allocator.allocate(DS_RL, OPEN_CALL, {})
        assert third.resource in ("Ress2", "Ress3")

    def test_same_signal_reuses_its_resource(self, paper_stand):
        allocator = self._allocator(paper_stand)
        first = allocator.allocate(DS_FL, OPEN_CALL, {})
        again = allocator.allocate(DS_FL, MethodCall("put_r", {"r": "1"}), {})
        assert first.resource == again.resource

    def test_bus_signal_uses_can_interface(self, paper_stand):
        allocator = self._allocator(paper_stand)
        allocation = allocator.allocate(NIGHT, CAN_CALL, {})
        assert allocation.resource == "Ress4"
        assert allocation.routes == ()

    def test_unsupported_method_raises_capability_error(self, paper_stand):
        allocator = self._allocator(paper_stand)
        with pytest.raises(CapabilityError):
            allocator.allocate(DS_FL, MethodCall("put_i", {"i": "1"}), {})

    def test_out_of_range_request_raises(self, paper_stand):
        allocator = self._allocator(paper_stand)
        with pytest.raises(AllocationError):
            allocator.allocate(INT_ILL, MethodCall("get_u", {"u_min": "500", "u_max": "600"}),
                               {"ubatt": 12})

    def test_best_fit_prefers_smaller_decade(self, paper_stand):
        allocator = self._allocator(paper_stand, policy="best_fit")
        allocation = allocator.allocate(DS_FL, OPEN_CALL, {})
        assert allocation.resource == "Ress3"   # 200 kOhm span < 1 MOhm span

    def test_least_used_balances(self, big_rack):
        allocator = self._allocator(big_rack, policy="least_used")
        first = allocator.allocate(DS_FL, OPEN_CALL, {})
        second = allocator.allocate(DS_FR, OPEN_CALL, {})
        assert first.resource != second.resource

    def test_unknown_policy_rejected(self, paper_stand):
        with pytest.raises(AllocationError):
            Allocator(paper_stand.resources, paper_stand.connections, policy="random")

    def test_statistics_tracked(self, paper_stand):
        allocator = self._allocator(paper_stand)
        allocator.allocate(DS_FL, OPEN_CALL, {})
        with pytest.raises(AllocationError):
            allocator.allocate(DS_FL, MethodCall("put_i", {"i": "1"}), {})
        assert allocator.attempts == 2 and allocator.failures == 1
        assert sum(allocator.allocation_counts.values()) == 1

    def test_release_all(self, paper_stand):
        allocator = self._allocator(paper_stand)
        allocator.allocate(DS_FL, OPEN_CALL, {})
        allocator.release_all()
        assert not allocator.held_terminals

    def test_all_policies_resolve_paper_example(self, paper_stand):
        for policy in ALLOCATION_POLICIES:
            allocator = self._allocator(paper_stand, policy=policy)
            assert allocator.allocate(DS_FL, OPEN_CALL, {}).resource
            assert allocator.allocate(INT_ILL, HO_CALL, {"ubatt": 12}).resource == "Ress1"


class TestStands:
    def test_paper_stand_structure(self, paper_stand):
        assert len(paper_stand.resources) == 4
        assert len(paper_stand.connections) == 10
        assert paper_stand.supply_voltage == 12.0

    def test_big_rack_structure(self, big_rack):
        assert len(big_rack.resources) == 12
        assert "get_i" in big_rack.methods_supported()

    def test_minimal_bench_structure(self, minimal_bench):
        assert len(minimal_bench.resources) == 5
        assert all(isinstance(route.connector, DirectWire) for route in minimal_bench.connections)
        # The clamp ammeter closes the bench's former get_i capability gap
        # and reaches every adapter pin (a clamp goes around any wire).
        assert "get_i" in minimal_bench.methods_supported()
        clamp_pins = {route.pin for route in minimal_bench.connections
                      if route.resource == "BENCH_CLAMP"}
        assert clamp_pins == {route.pin for route in minimal_bench.connections}

    def test_stand_validation(self):
        from repro.teststand import TestStand
        with pytest.raises(AllocationError):
            TestStand("", ResourceTable(), ConnectionMatrix())
        with pytest.raises(AllocationError):
            TestStand("x", ResourceTable(), ConnectionMatrix(), supply_voltage=-1)
