"""Regression tests for the closed detection gaps and capability negotiation.

Four of the five DUT fault catalogues used to carry a seeded defect the
bundled voltage-window sheets provably could not catch (``fast_relay_weak``,
``travel_slightly_slow``, ``drl_dim``, ``unlocks_at_speed``).  The current-
measurement and tightened-timing sheets close those gaps; this module pins

* each formerly-escaped fault to *detected* on a fully equipped stand,
* the paper's intentional ``ignores_ds_fr`` gap to *not* being flipped,
* the registry-driven stand capability negotiation: a ``get_i`` sheet on a
  stand without an ammeter is rejected pre-flight with a structured
  :class:`~repro.targets.CapabilityGapError` (CLI exit code 2), not half-way
  through a campaign as ERROR verdicts.
"""

from __future__ import annotations

import pytest

from repro.analysis.faults import (
    central_locking_faults,
    exterior_light_faults,
    interior_light_faults,
    window_lifter_faults,
    wiper_faults,
)
from repro.cli import main_campaign
from repro.instruments import CanInterface, Dvm, ResistorDecade
from repro.targets import (
    CampaignSpec,
    CapabilityGapError,
    RunSpec,
    get_dut,
    get_stand,
    method_coverage,
    register_stand,
    run_campaign,
    run_single,
    unregister_stand,
)
from repro.teststand.connection import ConnectionMatrix, DirectWire, Route
from repro.teststand.resources import Resource, ResourceTable
from repro.teststand.stands import TestStand

#: DUT -> (formerly escaped fault, the sheet that closes the gap).
CLOSED_GAPS = {
    "wiper_ecu": ("fast_relay_weak", "fast_relay_current"),
    "window_lifter_ecu": ("travel_slightly_slow", "travel_timing"),
    "exterior_light_ecu": ("drl_dim", "drl_lamp_current"),
    "central_locking_ecu": ("unlocks_at_speed", "unlock_inhibit_at_speed"),
}

ALL_CATALOGUES = (interior_light_faults, central_locking_faults, wiper_faults,
                  window_lifter_faults, exterior_light_faults)


def build_bare_bench(pins=("WASH_SW", "WIPER_MOTOR", "WIPER_FAST", "WASH_PUMP")):
    """A bench with DVM, decade and CAN but *no* ammeter (the pre-PR-3
    minimal bench, essentially): get_i sheets cannot run here."""
    resources = ResourceTable((
        Resource("DVM", Dvm("bare_dvm", u_min=-20.0, u_max=20.0)),
        Resource("DEC", ResistorDecade("bare_dec", max_ohms=5.0e4)),
        Resource("CAN", CanInterface("bare_can")),
    ))
    connections = ConnectionMatrix()
    for index, pin in enumerate(pins, start=1):
        connections.add(Route("DVM", "hi", pin, DirectWire(f"P{index}")))
        connections.add(Route("DEC", "a", pin, DirectWire(f"Q{index}")))
    return TestStand(name="bare_bench", resources=resources,
                     connections=connections)


@pytest.fixture
def bare_bench_registered():
    register_stand("bare_bench", build_bare_bench, adaptable=True,
                   description="ammeter-less bench (capability-gap fixture)")
    try:
        yield get_stand("bare_bench")
    finally:
        unregister_stand("bare_bench")


class TestClosedGaps:
    @pytest.mark.parametrize("dut,gap", [
        (dut, gap) for dut, (gap, _sheet) in CLOSED_GAPS.items()
    ])
    @pytest.mark.parametrize("stand", ["big_rack", "minimal"])
    def test_formerly_escaped_fault_is_detected(self, dut, gap, stand):
        result = run_campaign(CampaignSpec(dut=dut, stand=stand, faults=(gap,)))
        assert result.baseline_clean, f"{dut}: baseline dirty on {stand}"
        assert result.detected == (gap,), (
            f"{dut}: {gap} still escapes the suite on {stand}"
        )

    @pytest.mark.parametrize("dut,gap,sheet", [
        (dut, gap, sheet) for dut, (gap, sheet) in CLOSED_GAPS.items()
    ])
    def test_the_new_sheet_is_what_catches_it(self, dut, gap, sheet):
        # The gap fault must fail exactly on the sheet that was authored to
        # catch it - a voltage sheet suddenly catching an aged driver would
        # mean the fault model lost its point.
        result = run_campaign(CampaignSpec(dut=dut, stand="big_rack",
                                           faults=(gap,)))
        (outcome,) = result.outcomes
        assert outcome.failing_tests == (sheet,)

    def test_no_expected_detections_are_missed_anywhere(self):
        for dut in ("wiper_ecu", "window_lifter_ecu", "exterior_light_ecu",
                    "central_locking_ecu"):
            result = run_campaign(CampaignSpec(dut=dut))
            assert result.baseline_clean
            assert result.undetected == (), f"{dut}: {result.undetected}"


class TestIgnoresDsFrStaysAGap:
    """Guard: the paper's own knowledge gap must *not* be flipped.

    The paper's ten-step sheet only ever exercises the DS_FR door contact by
    day, so the ``ignores_ds_fr`` defect escapes it - that is the worked
    illustration of the paper's point that test sheets preserve (and must
    keep accumulating) component knowledge.  The new current/timing sheets
    close *stand-capability* gaps, not this documented behavioural one: it
    stays ``expected_detected=False`` in the catalogue, and only the
    extended night-time DS_FR sheet (a later knowledge generation) catches
    it.
    """

    def test_catalogue_expectation_not_flipped(self):
        fault = interior_light_faults().get("ignores_ds_fr")
        assert fault.expected_detected is False

    def test_it_is_the_sole_documented_escape(self):
        escapes = [
            (catalogue.ecu_name, fault.name)
            for factory in ALL_CATALOGUES
            for catalogue in (factory(),)
            for fault in catalogue
            if not fault.expected_detected
        ]
        assert escapes == [("interior_light_ecu", "ignores_ds_fr")]

    def test_paper_sheet_alone_still_misses_it(self):
        from repro.paper import paper_suite

        result = run_campaign(CampaignSpec(suite=paper_suite(), stand="paper",
                                           faults=("ignores_ds_fr",)))
        assert result.baseline_clean
        assert result.undetected == ("ignores_ds_fr",)


class TestCapabilityNegotiation:
    def test_stand_methods_computed_at_registration(self, bare_bench_registered):
        assert bare_bench_registered.methods == ("get_can", "get_u",
                                                 "put_can", "put_r")
        assert bare_bench_registered.missing_methods(["get_i", "get_u"]) == \
            ("get_i",)
        # wait is served by the interpreter, never by a resource.
        assert bare_bench_registered.missing_methods(["wait"]) == ()

    def test_bundled_stands_all_cover_the_bundled_suites(self):
        for dut in ("wiper_ecu", "window_lifter_ecu", "exterior_light_ecu",
                    "central_locking_ecu", "interior_light_ecu"):
            coverage = method_coverage(dut)
            assert coverage, dut
            assert all(missing == () for missing in coverage.values()), \
                (dut, coverage)

    def test_dut_required_methods_recorded(self):
        wiper = get_dut("wiper_ecu")
        assert wiper.required_methods is not None
        assert "get_i" in wiper.required_methods
        interior = get_dut("interior_light_ecu")
        assert interior.required_methods is not None
        assert "get_i" not in interior.required_methods

    def test_method_coverage_names_the_gap(self, bare_bench_registered):
        coverage = method_coverage("wiper_ecu")
        assert coverage["bare_bench"] == ("get_i",)
        assert coverage["big_rack"] == ()
        assert coverage["minimal"] == ()

    def test_campaign_rejected_preflight(self, bare_bench_registered):
        with pytest.raises(CapabilityGapError) as excinfo:
            run_campaign(CampaignSpec(dut="wiper_ecu", stand="bare_bench"))
        error = excinfo.value
        assert error.stand == "bare_bench"
        assert error.missing == ("get_i",)
        assert error.dut == "wiper_ecu"
        assert "get_i" in str(error)

    def test_run_single_rejected_preflight(self, bare_bench_registered):
        from repro.core import Compiler
        from repro.paper import wiper_suite

        script = Compiler().compile_test(wiper_suite(), "fast_relay_current")
        with pytest.raises(CapabilityGapError, match="get_i"):
            run_single(RunSpec(script=script, stand="bare_bench"))
        # Sheets without get_i still run on the bare bench.
        voltage_script = Compiler().compile_test(wiper_suite(),
                                                 "continuous_wiping")
        assert run_single(RunSpec(script=voltage_script,
                                  stand="bare_bench")).passed

    def test_cli_campaign_exit_2_not_mid_campaign(self, bare_bench_registered,
                                                  capsys):
        assert main_campaign(["--dut", "wiper_ecu", "--stand", "bare_bench",
                              "--quiet"]) == 2
        captured = capsys.readouterr()
        assert "get_i" in captured.err and "bare_bench" in captured.err
        # Pre-flight means no campaign output at all, not a table of ERRORs.
        assert "fault campaign" not in captured.out

    def test_list_targets_prints_method_coverage(self, bare_bench_registered,
                                                 capsys):
        assert main_campaign(["--list-targets"]) == 0
        out = capsys.readouterr().out
        assert "coverage:" in out
        assert "bare_bench no get_i" in out
        assert "suite methods:" in out
        # Every stand advertises its supported methods.
        assert "methods: get_can, get_u, put_can, put_r" in out

    def test_unknown_coverage_degrades_gracefully(self):
        def exploding_builder():
            raise RuntimeError("no such lab")

        register_stand("ghost_rig", exploding_builder, adaptable=True)
        try:
            assert get_stand("ghost_rig").methods is None
            assert get_stand("ghost_rig").missing_methods(["get_i"]) == ()
            assert method_coverage("wiper_ecu")["ghost_rig"] is None
        finally:
            unregister_stand("ghost_rig")
