"""Documentation-site checks: the link checker tool and the docs themselves.

Tier-1 runs the same link check as the CI docs job, so a broken relative
link in README / docs / ROADMAP fails locally before it fails in CI.  A
couple of content assertions pin the claims the docs make to the code
(quickstart commands exist, the backend matrix names the real backends).
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
CHECKER = REPO_ROOT / "tools" / "check_md_links.py"


def _load_checker():
    spec = importlib.util.spec_from_file_location("check_md_links", CHECKER)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


checker = _load_checker()


class TestLinkChecker:
    def test_docs_have_no_broken_links(self, capsys):
        """The CI docs job's exact invocation, run as a tier-1 test."""
        targets = [str(REPO_ROOT / name) for name in ("README.md", "docs", "ROADMAP.md")]
        assert checker.main(targets) == 0, capsys.readouterr().err

    def test_detects_broken_link(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text("see [missing](./no_such_file.md)\n")
        problems = checker.check_file(page)
        assert len(problems) == 1
        assert "no_such_file.md" in problems[0]

    def test_accepts_externals_and_anchors(self, tmp_path):
        other = tmp_path / "other.md"
        other.write_text("# Other\n")
        page = tmp_path / "page.md"
        page.write_text(
            "[web](https://example.org/x) [mail](mailto:a@b.c) "
            "[anchor](#section) [file](other.md#heading)\n"
        )
        assert checker.check_file(page) == []

    def test_walks_directories(self, tmp_path):
        (tmp_path / "sub").mkdir()
        (tmp_path / "sub" / "a.md").write_text("[bad](gone.md)\n")
        files = checker.iter_markdown_files([str(tmp_path)])
        assert [f.name for f in files] == ["a.md"]
        assert checker.main([str(tmp_path)]) == 1


class TestDocsMatchCode:
    def test_quickstart_names_real_cli_and_dut(self):
        """Commands printed in the README must exist as written."""
        readme = (REPO_ROOT / "README.md").read_text()
        from repro import targets
        assert "repro-campaign --dut wiper_ecu" in readme
        assert "wiper_ecu" in targets.dut_names()
        assert "--backend async --concurrency 8" in readme

    def test_backend_matrix_is_current(self):
        """The README's backend table names exactly the real backends."""
        readme = (REPO_ROOT / "README.md").read_text()
        from repro.teststand import EXECUTION_BACKENDS
        for backend in EXECUTION_BACKENDS:
            assert f"`{backend}`" in readme

    def test_architecture_names_real_modules(self):
        architecture = (REPO_ROOT / "docs" / "architecture.md").read_text()
        for module in ("core", "sheets", "can", "dut", "instruments",
                       "methods", "teststand", "analysis", "paper"):
            assert module in architecture
            assert (REPO_ROOT / "src" / "repro" / module).exists() or \
                (REPO_ROOT / "src" / "repro" / f"{module}.py").exists()

    def test_execution_vm_doc_names_real_ops(self):
        """The VM doc's instruction table must list the real opcode set."""
        doc = (REPO_ROOT / "docs" / "execution-vm.md").read_text()
        from repro.teststand.vm import VM_OPS
        for op in VM_OPS:
            assert f"`{op}`" in doc
        assert "X-UNCOMPILABLE-SCRIPT" in doc
        architecture = (REPO_ROOT / "docs" / "architecture.md").read_text()
        assert "execution-vm.md" in architecture

    def test_composition_doc_matches_registry_and_lint(self):
        """The composition doc's commands, names and rules must be real."""
        doc = (REPO_ROOT / "docs" / "composition.md").read_text()
        from repro.lint.composition import RULES
        from repro.targets import get_composition
        comp = get_composition("lock+cluster")
        assert "repro-campaign --compose lock+cluster" in doc
        for member in comp.members:
            assert f"`{member.alias}`" in doc
        for rule in RULES:
            assert f"`{rule.id}`" in doc
        # The documented seeded escape exists and is addressed per member.
        assert "cluster.speed_tx_truncated" in doc
        assert "cluster.speed_tx_truncated" in comp.faults_factory().names
        readme = (REPO_ROOT / "README.md").read_text()
        assert "repro-campaign --compose lock+cluster" in readme
        architecture = (REPO_ROOT / "docs" / "architecture.md").read_text()
        assert "composition.md" in architecture

    def test_writing_a_dut_cribs_from_real_apis(self):
        guide = (REPO_ROOT / "docs" / "writing-a-dut.md").read_text()
        from repro.analysis.faults import FaultCatalogue, FaultModel  # noqa: F401
        from repro.targets import register_dut, register_stand  # noqa: F401
        for name in ("register_dut", "register_stand", "FaultCatalogue",
                     "drive_output", "family_status_table"):
            assert name in guide
