"""Tests for the job-based campaign executor and the interpreter timing /
stop-on-error fixes that ride on it.

The process-backend tests rely on module-level factories (anything a job
carries must be picklable to cross a process boundary).
"""

from __future__ import annotations

import pytest

from repro.analysis import FaultCampaign, interior_light_faults
from repro.core import Compiler
from repro.core.errors import ReproError
from repro.core.script import MethodCall, ScriptStep, SignalAction, TestScript
from repro.dut import InteriorLightEcu
from repro.paper import interior_harness, paper_signal_set, paper_suite
from repro.teststand import (
    EXECUTION_BACKENDS,
    Job,
    SerialExecutor,
    TestStandInterpreter,
    ThreadExecutor,
    Verdict,
    build_paper_stand,
    expand_jobs,
    make_executor,
    run_across_stands,
    run_jobs,
    summary_line,
    text_report,
)


def paper_scripts():
    return Compiler().compile_suite(paper_suite())


def _action(signal: str, method: str, **params) -> SignalAction:
    return SignalAction(signal, MethodCall(method, {k: str(v) for k, v in params.items()}))


# ---------------------------------------------------------------------------
# Interpreter fixes
# ---------------------------------------------------------------------------

class TestInterpreterTiming:
    def _run(self, script):
        interpreter = TestStandInterpreter(
            build_paper_stand(), interior_harness(InteriorLightEcu()), paper_signal_set()
        )
        return interpreter.run(script)

    def test_wall_time_is_recorded(self):
        script = Compiler().compile_test(paper_suite(), "interior_illumination")
        result = self._run(script)
        assert result.wall_time > 0.0
        assert f"{result.wall_time * 1e3:.1f} ms" in summary_line(result)
        assert "Wall time" in text_report(result)

    def test_duration_counts_wait_actions(self):
        """`wait` advances the harness clock beyond the step's own duration."""
        step = ScriptStep(0, 1.0, (_action("NIGHT", "wait", t=5),))
        script = TestScript("waits", "interior_light_ecu", [step])
        result = self._run(script)
        assert result.duration == pytest.approx(6.0)
        assert sum(s.duration for s in result.steps) == pytest.approx(1.0)

    def test_duration_counts_setup_time(self):
        """Time spent during setup actions belongs to the simulated duration."""
        step = ScriptStep(0, 1.0, (_action("NIGHT", "wait", t=5),))
        script = TestScript("setup_waits", "interior_light_ecu", [step],
                            setup=(_action("NIGHT", "wait", t=2),))
        result = self._run(script)
        assert result.duration == pytest.approx(8.0)

    def test_duration_still_matches_step_sum_without_waits(self):
        script = Compiler().compile_test(paper_suite(), "interior_illumination")
        result = self._run(script)
        assert result.duration == pytest.approx(sum(s.duration for s in result.steps))


class TestSetupStopOnError:
    def _script_with_broken_setup(self):
        step = ScriptStep(0, 0.5, (_action("INT_ILL", "get_u", u_min=0, u_max=1),))
        return TestScript("broken_setup", "interior_light_ecu", [step],
                          setup=(_action("no_such_signal", "get_u", u_min=0, u_max=1),
                                 _action("NIGHT", "wait", t=1)))

    def test_setup_error_aborts_run_when_stop_on_error(self):
        interpreter = TestStandInterpreter(
            build_paper_stand(), interior_harness(InteriorLightEcu()),
            paper_signal_set(), stop_on_error=True,
        )
        result = interpreter.run(self._script_with_broken_setup())
        # The failing setup action is preserved, later setup actions and all
        # steps are not executed.
        assert len(result.setup) == 1
        assert result.setup[0].verdict is Verdict.ERROR
        assert result.steps == ()
        assert result.verdict is Verdict.ERROR

    def test_setup_error_continues_without_stop_on_error(self):
        interpreter = TestStandInterpreter(
            build_paper_stand(), interior_harness(InteriorLightEcu()),
            paper_signal_set(), stop_on_error=False,
        )
        result = interpreter.run(self._script_with_broken_setup())
        assert len(result.setup) == 2
        assert len(result.steps) == 1

    def test_holds_released_after_run(self):
        interpreter = TestStandInterpreter(
            build_paper_stand(), interior_harness(InteriorLightEcu()), paper_signal_set()
        )
        result = interpreter.run(Compiler().compile_test(paper_suite(),
                                                         "interior_illumination"))
        assert result.passed
        assert interpreter.allocator.held_terminals == {}


# ---------------------------------------------------------------------------
# Executor engine
# ---------------------------------------------------------------------------

class TestExecutorEngine:
    def test_expand_jobs_orders_cross_product(self):
        scripts = paper_scripts()
        jobs = expand_jobs(
            scripts, paper_signal_set(),
            {"paper": build_paper_stand},
            interior_harness,
            {"baseline": InteriorLightEcu, "faulty": InteriorLightEcu},
        )
        assert len(jobs) == 2 * len(scripts)
        assert [job.index for job in jobs] == list(range(len(jobs)))
        assert jobs[0].group == "baseline" and jobs[-1].group == "faulty"
        assert all(job.stand_label == "paper" for job in jobs)

    def test_make_executor_backends(self):
        assert make_executor("auto", 1).name == "serial"
        assert make_executor("auto", 4).name == "thread"
        assert make_executor("serial", 8).name == "serial"
        assert make_executor("process", 2).workers == 2
        # The async backend is one worker multiplexing N stands: concurrency
        # comes from --concurrency, falls back to --jobs, then to the default.
        assert make_executor("async", 1).concurrency == 8
        assert make_executor("async", 4).concurrency == 4
        assert make_executor("async", 4, concurrency=16).concurrency == 16
        assert make_executor("async", 4).workers == 1
        with pytest.raises(ReproError):
            make_executor("quantum", 2)
        with pytest.raises(ReproError):
            make_executor("async", 1, concurrency=-8)
        assert set(EXECUTION_BACKENDS) == {"serial", "thread", "process", "async"}

    def test_retries_transient_errors(self):
        failures = {"left": 1}

        def flaky_ecu():
            if failures["left"] > 0:
                failures["left"] -= 1
                raise RuntimeError("transient allocation race")
            return InteriorLightEcu()

        jobs = expand_jobs(
            paper_scripts(), paper_signal_set(), {"": build_paper_stand},
            interior_harness, {"": flaky_ecu},
        )
        report = run_jobs(jobs, SerialExecutor(), max_attempts=3)
        assert report.ok
        assert report.results[0].attempts == 2
        assert report.results[0].result.passed

    def test_terminal_error_is_reported_not_raised(self):
        def broken_ecu():
            raise RuntimeError("stand on fire")

        jobs = expand_jobs(
            paper_scripts(), paper_signal_set(), {"": build_paper_stand},
            interior_harness, {"": broken_ecu},
        )
        report = run_jobs(jobs, SerialExecutor(), max_attempts=2)
        assert not report.ok
        job_result = report.results[0]
        assert job_result.result is None
        assert job_result.attempts == 2
        assert "stand on fire" in job_result.error
        assert job_result.verdict is Verdict.ERROR
        assert "ERROR" in report.verdict_table()
        with pytest.raises(ReproError):
            report.test_results()

    def test_results_stream_and_slot_in_order(self):
        seen = []
        jobs = expand_jobs(
            paper_scripts(), paper_signal_set(), {"": build_paper_stand},
            interior_harness,
            {f"g{i}": InteriorLightEcu for i in range(6)},
        )
        report = run_jobs(jobs, ThreadExecutor(4), on_result=seen.append)
        assert len(seen) == len(jobs)          # every result streamed once
        assert [jr.job.index for jr in report] == list(range(len(jobs)))

    def test_run_across_stands_all_pass(self):
        from repro.teststand import build_big_rack, build_minimal_bench

        report = run_across_stands(
            paper_scripts(), paper_signal_set(),
            {"paper": build_paper_stand, "big": build_big_rack,
             "minimal": build_minimal_bench},
            interior_harness, InteriorLightEcu,
        )
        assert len(report) == 3
        assert all(result.passed for result in report.test_results())


class TestSerialParallelEquivalence:
    """Backend byte-identity itself lives in ``test_parity_matrix.py``;
    this class keeps only executor-specific behaviours."""

    @pytest.fixture(scope="class")
    def campaign(self):
        return FaultCampaign(paper_scripts(), paper_signal_set(), build_paper_stand,
                             interior_harness, InteriorLightEcu)

    def test_interleaved_jobs_on_a_shared_stand(self, campaign):
        """Allocator holds are per-job: sharing one physical stand between
        interleaved workers must not leak terminal holds between runs."""
        shared_stand = build_paper_stand()
        jobs = expand_jobs(
            paper_scripts(), paper_signal_set(),
            {"shared": lambda: shared_stand},
            interior_harness,
            {f"run{i}": InteriorLightEcu for i in range(8)},
        )
        report = run_jobs(jobs, ThreadExecutor(4))
        results = report.test_results()
        assert len(results) == 8
        assert all(result.passed for result in results)

    def test_execution_metadata_attached(self, campaign):
        result = campaign.run(interior_light_faults(), executor=ThreadExecutor(2))
        execution = result.execution
        assert execution is not None
        assert execution.backend == "thread" and execution.workers == 2
        assert len(execution) == 10            # baseline + 9 faults, 1 script
        assert execution.wall_time > 0.0
        assert execution.by_group().keys() >= {"baseline", "lamp_stuck_off"}
        assert "thread" in execution.summary()


# ---------------------------------------------------------------------------
# repro-campaign CLI
# ---------------------------------------------------------------------------

class TestCampaignCli:
    @pytest.fixture()
    def workbook(self, tmp_path):
        from repro.sheets import save_suite

        directory = str(tmp_path / "workbook")
        save_suite(paper_suite(), directory)
        return directory

    def _stdout(self, capsys, argv):
        from repro.cli import main_campaign

        code = main_campaign(argv)
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_parallel_output_is_byte_identical(self, workbook, capsys):
        code1, out1, err1 = self._stdout(capsys, [workbook])
        code3, out3, err3 = self._stdout(capsys, [workbook, "--jobs", "3"])
        assert code1 == 0 and code3 == 0
        assert out1 == out3                      # verdicts never depend on --jobs
        assert "lamp_stuck_off" in out1
        assert "serial backend" in err1 and "thread backend" in err3

    def test_fault_subset_and_quiet(self, workbook, capsys):
        code, out, _ = self._stdout(
            capsys, [workbook, "--faults", "lamp_stuck_off", "--quiet"])
        assert code == 0
        assert "1 faults, 1 detected" in out

    def test_unknown_fault_rejected(self, workbook, capsys):
        code, _, err = self._stdout(capsys, [workbook, "--faults", "gremlins"])
        assert code == 2
        assert "known faults" in err

    def test_policy_choices_follow_allocator(self, workbook, capsys):
        from repro.teststand import ALLOCATION_POLICIES

        for policy in ALLOCATION_POLICIES:
            code, _, _ = self._stdout(capsys, [workbook, "--quiet",
                                               "--policy", policy])
            assert code == 0
        with pytest.raises(SystemExit):
            self._stdout(capsys, [workbook, "--policy", "not_a_policy"])

    def test_run_policy_choices_follow_allocator(self, workbook, tmp_path, capsys):
        from repro.cli import main_compile, main_run

        out_dir = str(tmp_path / "scripts")
        assert main_compile([workbook, out_dir]) == 0
        capsys.readouterr()
        script = f"{out_dir}/interior_illumination.xml"
        assert main_run([script, "--policy", "least_used", "--quiet"]) == 0
        with pytest.raises(SystemExit):
            main_run([script, "--policy", "not_a_policy"])
