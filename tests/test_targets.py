"""Tests for the repro.targets registry and the declarative spec API."""

from __future__ import annotations

import pytest

from repro import targets
from repro.core import Compiler
from repro.core.script import MethodCall, ScriptStep, SignalAction, TestScript
from repro.core.signals import SignalKind
from repro.paper import wiper_harness, wiper_suite
from repro.targets import (
    CampaignSpec,
    DutTarget,
    RunSpec,
    StandTarget,
    TargetError,
    derive_signal_set,
    register_dut,
    register_stand,
    run_campaign,
    run_single,
    stand_factories_for,
    stand_factory_for,
    unregister_dut,
    unregister_stand,
)
from repro.teststand import TestStand, build_minimal_bench


ALL_DUTS = ("central_locking_ecu", "exterior_light_ecu",
            "instrument_cluster_ecu", "interior_light_ecu",
            "window_lifter_ecu", "wiper_ecu")


class TestRegistry:
    def test_all_bundled_duts_registered(self):
        assert targets.dut_names() == ALL_DUTS
        assert targets.campaignable_dut_names() == ALL_DUTS

    def test_bundled_stands_registered(self):
        assert targets.stand_names() == ("big_rack", "minimal", "paper")
        assert targets.adaptable_stand_names() == ("big_rack", "minimal")
        assert not targets.get_stand("paper").adaptable

    def test_lookup_is_case_insensitive(self):
        assert targets.get_dut("WIPER_ECU").name == "wiper_ecu"
        assert targets.get_stand("Big_Rack").name == "big_rack"

    def test_unknown_lookups_raise(self):
        with pytest.raises(TargetError, match="unknown DUT"):
            targets.get_dut("alien_ecu")
        with pytest.raises(TargetError, match="unknown stand"):
            targets.get_stand("garage")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(TargetError, match="already registered"):
            register_dut(targets.get_dut("wiper_ecu"))
        with pytest.raises(TargetError, match="already registered"):
            register_stand("paper", build_minimal_bench)

    def test_register_and_unregister_target(self):
        target = DutTarget(
            name="toy_ecu",
            ecu_factory=object,
            harness_factory=lambda ecu: ecu,
            signals_factory=tuple,
        )
        assert register_dut(target) is target
        try:
            assert targets.get_dut("toy_ecu") is target
            assert not target.campaignable
            assert "toy_ecu" not in targets.campaignable_dut_names()
        finally:
            assert unregister_dut("toy_ecu") is target
        with pytest.raises(TargetError):
            targets.get_dut("toy_ecu")

    def test_register_dut_as_decorator(self):
        @register_dut(name="deco_ecu", harness_factory=lambda ecu: ecu,
                      signals_factory=tuple, description="decorated")
        class DecoEcu:
            NAME = "deco_ecu"

        try:
            target = targets.get_dut("deco_ecu")
            assert target.ecu_factory is DecoEcu
            assert target.description == "decorated"
        finally:
            unregister_dut("deco_ecu")

    def test_register_stand_as_decorator(self):
        @register_stand("deco_bench", adaptable=True)
        def build_deco_bench(pins=("A",)):
            return build_minimal_bench()

        try:
            stand = targets.get_stand("deco_bench")
            assert stand.adaptable
            assert isinstance(stand.factory_for(("A", "B"))(), TestStand)
        finally:
            unregister_stand("deco_bench")

    def test_register_stand_direct_call_returns_the_builder(self):
        def build_direct_bench():
            return build_minimal_bench()

        returned = register_stand("direct_bench", build_direct_bench)
        try:
            # Both registration forms pass the builder through unchanged.
            assert returned is build_direct_bench
            assert isinstance(returned(), TestStand)
        finally:
            unregister_stand("direct_bench")

    def test_stand_factory_for_wires_adapter_pins(self):
        factory = stand_factory_for("big_rack", "wiper_ecu")
        stand = factory()
        pins = {route.pin for route in stand.connections}
        assert "WIPER_MOTOR" in pins and "WASH_SW" in pins

    def test_stand_factory_for_rejects_non_adaptable(self):
        with pytest.raises(TargetError, match="no DUT adapter"):
            stand_factory_for("paper", "wiper_ecu")

    def test_stand_factories_for_skips_non_adaptable(self):
        factories = stand_factories_for("window_lifter_ecu")
        assert sorted(factories) == ["big_rack", "minimal"]
        # The interior DUT uses the paper default pinning: every stand fits.
        assert sorted(stand_factories_for("interior_light_ecu")) == \
            ["big_rack", "minimal", "paper"]

    def test_stand_factories_for_explicit_non_adaptable_raises(self):
        with pytest.raises(TargetError, match="no DUT adapter"):
            stand_factories_for("wiper_ecu", stands=("paper",))


def _script(dut: str, *signal_names: str) -> TestScript:
    actions = tuple(
        SignalAction(name.lower(), MethodCall("get_u", {"u_min": "0", "u_max": "1"}))
        for name in signal_names
    )
    return TestScript(name="probe", dut=dut,
                      steps=[ScriptStep(number=1, duration=0.1, actions=actions)])


class TestDeriveSignalSet:
    def test_pins_and_messages_resolve(self):
        script = _script("wiper_ecu", "WASH_SW", "WIPER_MOTOR", "WIPER_MODE")
        signals = derive_signal_set(script, wiper_harness(), warn=None)
        assert signals.get("WASH_SW").kind is SignalKind.RESISTIVE
        assert not signals.get("WASH_SW").is_output
        assert signals.get("WIPER_MOTOR").kind is SignalKind.ANALOG
        assert signals.get("WIPER_MOTOR").is_output
        bus = signals.get("WIPER_MODE")
        assert bus.kind is SignalKind.BUS and bus.message == "WIPER_COMMAND"

    def test_bus_signal_direction_follows_script_usage(self):
        from repro.paper import window_lifter_harness

        # WIN_POS is only ever *measured* (get_can) by the script, so the
        # derived sheet must model it as a DUT output, not a stimulus.
        script = TestScript(
            name="usage", dut="window_lifter_ecu",
            steps=[ScriptStep(number=1, duration=0.1, actions=(
                SignalAction("win_pos",
                             MethodCall("get_can", {"data_min": "0",
                                                    "data_max": "1"})),
                SignalAction("ign_st", MethodCall("put_can", {"data": "10B"})),
            ))],
        )
        signals = derive_signal_set(script, window_lifter_harness(), warn=None)
        assert signals.get("WIN_POS").is_output
        assert not signals.get("WIN_POS").is_input
        assert signals.get("IGN_ST").is_input

    def test_unresolvable_signal_warns_and_is_dropped(self):
        script = _script("wiper_ecu", "WIPER_MOTOR", "BOGUS")
        warnings: list[str] = []
        signals = derive_signal_set(script, wiper_harness(), warn=warnings.append)
        assert "BOGUS" not in signals and "WIPER_MOTOR" in signals
        assert len(warnings) == 1
        assert "bogus" in warnings[0] and "neither a pin" in warnings[0]

    def test_default_warn_is_a_filterable_warning(self):
        from repro.targets import SignalDerivationWarning

        script = _script("wiper_ecu", "BOGUS")
        with pytest.warns(SignalDerivationWarning, match="bogus"):
            derive_signal_set(script, wiper_harness())

    def test_repeated_problems_warn_once_per_derivation(self):
        import warnings as warnings_module

        from repro.core.script import ScriptStep
        from repro.targets import SignalDerivationWarning

        # The same unresolvable signal in several steps must produce one
        # warning, not one per occurrence.
        action = SignalAction("bogus", MethodCall("get_u", {"u_min": "0",
                                                            "u_max": "1"}))
        script = TestScript(name="probe", dut="wiper_ecu", steps=[
            ScriptStep(number=1, duration=0.1, actions=(action,)),
            ScriptStep(number=2, duration=0.1, actions=(action,)),
        ])
        with warnings_module.catch_warnings(record=True) as caught:
            warnings_module.simplefilter("always")
            derive_signal_set(script, wiper_harness())
        relevant = [w for w in caught
                    if issubclass(w.category, SignalDerivationWarning)]
        assert len(relevant) == 1

    def test_no_warning_when_everything_resolves(self):
        import warnings as warnings_module

        script = _script("wiper_ecu", "WIPER_MOTOR")
        with warnings_module.catch_warnings(record=True) as caught:
            warnings_module.simplefilter("always")
            derive_signal_set(script, wiper_harness())
        assert not caught


class TestRunSingle:
    def test_run_single_with_registered_signals(self):
        suite = wiper_suite()
        script = Compiler().compile_test(suite, "continuous_wiping")
        result = run_single(RunSpec(script=script, stand="big_rack"))
        assert result.passed

    def test_run_single_reads_script_from_path(self, tmp_path):
        from repro.core import write_script

        suite = wiper_suite()
        script = Compiler().compile_test(suite, "continuous_wiping")
        path = str(tmp_path / "script.xml")
        write_script(script, path)
        result = run_single(RunSpec(script=path, stand="minimal"))
        assert result.passed

    def test_run_single_unknown_dut(self):
        with pytest.raises(TargetError, match="unknown DUT"):
            run_single(RunSpec(script=_script("alien_ecu", "X")))

    def test_run_single_non_adaptable_stand(self):
        script = Compiler().compile_test(wiper_suite(), "continuous_wiping")
        with pytest.raises(TargetError, match="no DUT adapter"):
            run_single(RunSpec(script=script, stand="paper"))

    def test_run_single_rejects_dut_script_mismatch(self):
        script = Compiler().compile_test(wiper_suite(), "continuous_wiping")
        with pytest.raises(TargetError, match="run\\s+spec targets"):
            run_single(RunSpec(script=script, dut="interior_light_ecu"))


class TestRunCampaign:
    def test_campaign_from_bundled_suite(self):
        result = run_campaign(CampaignSpec(dut="wiper_ecu", stand="big_rack"))
        assert result.baseline_clean
        # The fast_relay_current sheet closed the former fast_relay_weak gap.
        assert "fast_relay_weak" in result.detected
        assert result.undetected == ()

    def test_default_stand_carries_the_dut_adapter(self):
        from repro.targets import default_stand_for

        assert default_stand_for("interior_light_ecu") == "paper"
        assert default_stand_for("wiper_ecu") == "big_rack"
        # Registration order decides: a later adaptable stand (even one
        # sorting first alphabetically) must not shift existing defaults.
        register_stand("aaa_rig", build_minimal_bench, adaptable=True)
        try:
            assert default_stand_for("wiper_ecu") == "big_rack"
        finally:
            unregister_stand("aaa_rig")
        # No stand in the spec: every registered DUT campaigns cleanly.
        result = run_campaign(CampaignSpec(dut="window_lifter_ecu",
                                           faults=("motor_up_dead",)))
        assert result.baseline_clean and result.detected == ("motor_up_dead",)

    def test_explicit_executor_overrides_spec_backend(self):
        from repro.teststand import SerialExecutor

        result = run_campaign(
            CampaignSpec(dut="wiper_ecu", backend="process", jobs=8,
                         faults=("motor_stuck_off",)),
            executor=SerialExecutor(),
        )
        assert result.execution.backend == "serial"
        assert result.execution.workers == 1

    def test_campaign_tables_byte_identical_across_backends(self):
        tables = {}
        for backend, jobs in (("serial", 1), ("thread", 3)):
            result = run_campaign(CampaignSpec(
                dut="exterior_light_ecu", stand="big_rack",
                backend=backend, jobs=jobs,
            ))
            tables[backend] = result.table() + "\n" + result.summary()
        assert tables["serial"] == tables["thread"]

    def test_campaign_on_process_backend(self):
        # Everything in the expanded jobs must be picklable; a fault subset
        # keeps the pool small and the test quick.
        serial = run_campaign(CampaignSpec(
            dut="wiper_ecu", stand="big_rack", faults=("motor_stuck_off",),
        ))
        from_process = run_campaign(CampaignSpec(
            dut="wiper_ecu", stand="big_rack", faults=("motor_stuck_off",),
            backend="process", jobs=2,
        ))
        assert from_process.table() == serial.table()

    def test_campaign_from_workbook_matches_bundled_suite(self, tmp_path):
        from repro.sheets import save_suite

        workbook = str(tmp_path / "wb")
        save_suite(wiper_suite(), workbook)
        from_suite = run_campaign(CampaignSpec(dut="wiper_ecu", stand="big_rack"))
        from_workbook = run_campaign(CampaignSpec(workbook=workbook, stand="big_rack"))
        assert from_workbook.table() == from_suite.table()

    def test_fault_selection_order_and_dedupe(self):
        result = run_campaign(CampaignSpec(
            dut="wiper_ecu", stand="big_rack",
            faults=("no_fast_relay", "motor_stuck_off", "no_fast_relay"),
        ))
        assert [o.fault.name for o in result.outcomes] == \
            ["no_fast_relay", "motor_stuck_off"]

    def test_unknown_fault_name(self):
        with pytest.raises(TargetError, match="known faults"):
            run_campaign(CampaignSpec(dut="wiper_ecu", stand="big_rack",
                                      faults=("warp_drive_failure",)))

    def test_faults_accepts_none_as_whole_catalogue(self):
        assert CampaignSpec(dut="wiper_ecu", faults=None).faults == ()

    def test_faults_accepts_a_comma_separated_string(self):
        spec = CampaignSpec(dut="wiper_ecu",
                            faults="motor_stuck_off, no_fast_relay")
        assert spec.faults == ("motor_stuck_off", " no_fast_relay")
        result = run_campaign(spec)
        assert [o.fault.name for o in result.outcomes] == \
            ["motor_stuck_off", "no_fast_relay"]

    def test_spec_needs_a_suite_source(self):
        with pytest.raises(TargetError, match="needs a dut"):
            run_campaign(CampaignSpec())

    def test_suite_dut_mismatch(self):
        with pytest.raises(TargetError, match="targets"):
            run_campaign(CampaignSpec(dut="wiper_ecu", suite=__import__(
                "repro.paper", fromlist=["paper_suite"]).paper_suite(),
                stand="big_rack"))

    def test_broken_workbook(self, tmp_path):
        with pytest.raises(TargetError, match="cannot load workbook"):
            run_campaign(CampaignSpec(workbook=str(tmp_path / "nope")))

    def test_campaign_uses_the_suite_own_signal_sheet(self, tmp_path):
        # A workbook may rename signals relative to the registered bundled
        # set; the campaign must execute against the sheet the scripts were
        # compiled from, not silently swap in the registry's set.
        from repro.core.signals import Signal, SignalDirection, SignalKind, SignalSet
        from repro.core.testdef import TestDefinition, TestSuite
        from repro.paper import family_status_table
        from repro.sheets import save_suite

        signals = SignalSet(
            (
                Signal("IGNITION", SignalDirection.INPUT, SignalKind.BUS,
                       message="IGN_STATUS", initial_status="Off"),
                Signal("STALK", SignalDirection.INPUT, SignalKind.BUS,
                       message="WIPER_COMMAND", initial_status="WipeOff"),
                Signal("MOTOR", SignalDirection.OUTPUT, SignalKind.ANALOG,
                       pins=("WIPER_MOTOR",), initial_status="Lo"),
            ),
            dut="wiper_ecu",
        )
        test = TestDefinition("renamed_signals",
                              signals=("IGNITION", "STALK", "MOTOR"))
        test.add_step(0.5, {"IGNITION": "IgnOn", "STALK": "Slow", "MOTOR": "Ho"})
        test.add_step(0.5, {"STALK": "WipeOff", "MOTOR": "Lo"})
        suite = TestSuite("wiper_ecu", signals, family_status_table(), (test,))
        suite.validate()
        workbook = str(tmp_path / "wb")
        save_suite(suite, workbook)

        result = run_campaign(CampaignSpec(
            workbook=workbook, stand="big_rack", faults=("motor_stuck_off",),
        ))
        assert result.baseline_clean
        assert result.detected == ("motor_stuck_off",)


class TestDeprecatedShims:
    """Pre-registry public names must keep resolving (CAMPAIGN_TARGETS era)."""

    def test_cli_campaign_targets_cover_all_bundled_duts(self):
        from repro.cli import CAMPAIGN_TARGETS, CampaignTarget

        assert sorted(CAMPAIGN_TARGETS) == list(ALL_DUTS)
        target = CAMPAIGN_TARGETS["central_locking_ecu"]
        assert isinstance(target, CampaignTarget)
        assert target.pins == ("KEY_SW", "UNLOCK_SW", "LOCK_LED", "LOCK_ACT")
        assert len(target.faults_factory()) == 4

    def test_cli_stand_builders_and_adaptable_stands(self):
        from repro.cli import ADAPTABLE_STANDS, STAND_BUILDERS

        assert sorted(STAND_BUILDERS) == ["big_rack", "minimal", "paper"]
        assert isinstance(STAND_BUILDERS["paper"](), TestStand)
        assert sorted(ADAPTABLE_STANDS) == ["big_rack", "minimal"]

    def test_cli_shims_are_live_registry_views(self):
        import repro.cli as cli

        register_stand("late_bench", build_minimal_bench)
        try:
            assert "late_bench" in cli.STAND_BUILDERS
        finally:
            unregister_stand("late_bench")
        assert "late_bench" not in cli.STAND_BUILDERS

    def test_cli_shims_reject_in_place_mutation(self):
        import repro.cli as cli

        # Old-style registration by dict assignment must fail loudly, not
        # silently mutate a throwaway snapshot.
        with pytest.raises(TypeError):
            cli.STAND_BUILDERS["lab"] = build_minimal_bench
        with pytest.raises(TypeError):
            del cli.CAMPAIGN_TARGETS["wiper_ecu"]

    def test_cli_private_helpers_still_work(self):
        from repro.cli import CAMPAIGN_TARGETS, _campaign_stand_factory, _dut_registry

        registry = _dut_registry()
        assert sorted(registry) == list(ALL_DUTS)
        harness = registry["wiper_ecu"]()
        assert harness.ecu.name == "wiper_ecu"

        locking = CAMPAIGN_TARGETS["central_locking_ecu"]
        assert _campaign_stand_factory("paper", locking) is None
        stand = _campaign_stand_factory("big_rack", locking)()
        assert "KEY_SW" in {route.pin for route in stand.connections}

    def test_teststand_exports_still_resolve(self):
        from repro.teststand import (  # noqa: F401
            ALLOCATION_POLICIES,
            EXECUTION_BACKENDS,
            ExecutionReport,
            Job,
            JobResult,
            TestStandInterpreter,
            build_big_rack,
            build_minimal_bench,
            build_paper_stand,
            expand_jobs,
            make_executor,
            run_across_stands,
            run_jobs,
        )

    def test_package_level_exports(self):
        import repro

        assert repro.run_campaign is run_campaign
        assert repro.CampaignSpec is CampaignSpec
        assert repro.DutTarget is DutTarget
        assert repro.StandTarget is StandTarget


# ---------------------------------------------------------------------------
# Multi-ECU compositions
# ---------------------------------------------------------------------------

class TestCompositions:
    def test_bundled_composition_registered(self):
        from repro.targets import composition_names, get_composition

        assert "lock+cluster" in composition_names()
        comp = get_composition("lock+cluster")
        assert [m.alias for m in comp.members] == ["lock", "cluster"]
        assert comp.member_for("cluster").dut == "instrument_cluster_ecu"
        with pytest.raises(TargetError):
            get_composition("no_such_composition")

    def test_register_unregister_round_trip(self):
        from repro.targets import (
            CompositionTarget,
            composition_names,
            register_composition,
            unregister_composition,
        )
        from repro.paper import composed_suite

        toy = CompositionTarget(
            "toy_comp",
            (("a", "central_locking_ecu"), ("b", "instrument_cluster_ecu")),
            suite_factory=composed_suite,
        )
        register_composition(toy)
        try:
            assert "toy_comp" in composition_names()
            with pytest.raises(TargetError):
                register_composition(toy)  # duplicate name
        finally:
            unregister_composition("toy_comp")
        assert "toy_comp" not in composition_names()

    def test_composition_target_validation(self):
        from repro.targets import CompositionTarget
        from repro.paper import composed_suite

        with pytest.raises(TargetError):
            CompositionTarget("lonely", (("a", "wiper_ecu"),),
                              suite_factory=composed_suite)
        with pytest.raises(TargetError):
            CompositionTarget(
                "dupes", (("a", "wiper_ecu"), ("a", "interior_light_ecu")),
                suite_factory=composed_suite)

    def test_pins_are_member_union_in_member_order(self):
        from repro.targets import get_composition, get_dut

        comp = get_composition("lock+cluster")
        lock_pins = get_dut("central_locking_ecu").pins
        cluster_pins = get_dut("instrument_cluster_ecu").pins
        assert comp.pins == tuple(lock_pins) + tuple(cluster_pins)

    def test_member_faults_cover_bundled_and_interaction(self):
        from repro.targets import get_composition

        comp = get_composition("lock+cluster")
        names = comp.faults_factory().names
        assert "lock.no_auto_lock" in names
        assert "cluster.speed_tx_truncated" in names      # interaction-only
        escape = comp.faults_factory().get("cluster.gauge_stuck_zero")
        assert escape.expected_detected is False          # documented override
        with pytest.raises(TargetError):
            comp.member_fault("cluster", "no_such_fault")
        with pytest.raises(TargetError):
            comp.member_fault("nobody", "no_auto_lock")

    def test_spec_mutual_exclusion(self):
        from repro.core.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            CampaignSpec(dut="wiper_ecu", composition="lock+cluster")
        with pytest.raises(ConfigurationError):
            RunSpec(script="x.xml", dut="wiper_ecu",
                    composition="lock+cluster")

    def test_composed_campaign_detects_the_interaction_escape(self):
        result = run_campaign(CampaignSpec(
            composition="lock+cluster",
            faults=("cluster.speed_tx_truncated",),
        ))
        assert result.baseline_clean
        assert result.detected == ("cluster.speed_tx_truncated",)

    def test_single_dut_suite_provably_misses_the_escape(self):
        """The composition's reason to exist: the cluster's own suite
        passes with the truncating broadcast fault injected - only the
        cross-ECU interaction sheets catch it."""
        from repro.analysis import FaultCampaign
        from repro.analysis.faults import interaction_faults
        from repro.dut import InstrumentClusterEcu
        from repro.paper import cluster_harness, cluster_signal_set, cluster_suite
        from repro.targets import default_stand_for, stand_factory_for, get_dut

        dut = get_dut("instrument_cluster_ecu")
        campaign = FaultCampaign(
            Compiler().compile_suite(cluster_suite()),
            cluster_signal_set(),
            stand_factory_for(default_stand_for(dut), dut),
            cluster_harness,
            InstrumentClusterEcu,
        )
        result = campaign.run(
            [interaction_faults("instrument_cluster_ecu").get("speed_tx_truncated")]
        )
        assert result.baseline_clean
        assert result.undetected == ("speed_tx_truncated",)

    def test_run_single_composed_sheet(self):
        from repro.paper import composed_suite

        script = Compiler().compile_test(composed_suite(),
                                         "composed_unlock_inhibit")
        result = run_single(RunSpec(script=script,
                                    composition="lock+cluster"))
        assert result.passed
