"""Tests for the signal and status models."""

from __future__ import annotations

import pytest

from repro.core.errors import SignalError, StatusError
from repro.core.signals import Signal, SignalDirection, SignalKind, SignalSet
from repro.core.status import StatusDefinition, StatusTable


class TestSignalDirection:
    @pytest.mark.parametrize("text,expected", [
        ("in", SignalDirection.INPUT),
        ("Input", SignalDirection.INPUT),
        ("out", SignalDirection.OUTPUT),
        ("OUTPUT", SignalDirection.OUTPUT),
        ("inout", SignalDirection.BIDIRECTIONAL),
    ])
    def test_parse(self, text, expected):
        assert SignalDirection.parse(text) is expected

    def test_parse_unknown_raises(self):
        with pytest.raises(SignalError):
            SignalDirection.parse("sideways")


class TestSignalKind:
    @pytest.mark.parametrize("text,expected", [
        ("analog", SignalKind.ANALOG),
        ("voltage", SignalKind.ANALOG),
        ("resistive", SignalKind.RESISTIVE),
        ("switch", SignalKind.RESISTIVE),
        ("digital", SignalKind.DIGITAL),
        ("can", SignalKind.BUS),
        ("bus", SignalKind.BUS),
    ])
    def test_parse(self, text, expected):
        assert SignalKind.parse(text) is expected

    def test_parse_unknown_raises(self):
        with pytest.raises(SignalError):
            SignalKind.parse("optical")


class TestSignal:
    def test_pin_signal(self):
        signal = Signal("DS_FL", SignalDirection.INPUT, SignalKind.RESISTIVE, pins=("DS_FL",))
        assert signal.is_input and not signal.is_output and not signal.is_bus

    def test_bus_signal_needs_message(self):
        with pytest.raises(SignalError):
            Signal("IGN_ST", SignalDirection.INPUT, SignalKind.BUS)

    def test_pin_signal_needs_pin(self):
        with pytest.raises(SignalError):
            Signal("X", SignalDirection.INPUT, SignalKind.ANALOG)

    def test_empty_name_rejected(self):
        with pytest.raises(SignalError):
            Signal("  ", SignalDirection.INPUT, SignalKind.ANALOG, pins=("P",))

    def test_bidirectional_is_both(self):
        signal = Signal("IO", SignalDirection.BIDIRECTIONAL, SignalKind.DIGITAL, pins=("IO",))
        assert signal.is_input and signal.is_output


class TestSignalSet:
    def test_paper_signal_set_contents(self, signals):
        assert len(signals) == 7
        assert "INT_ILL" in signals
        assert "int_ill" in signals  # case-insensitive
        assert signals.get("INT_ILL").pins == ("INT_ILL_F", "INT_ILL_R")

    def test_inputs_and_outputs(self, signals):
        assert {s.name for s in signals.outputs} == {"INT_ILL"}
        assert len(signals.inputs) == 6

    def test_duplicate_rejected(self, signals):
        with pytest.raises(SignalError):
            signals.add(Signal("INT_ILL", SignalDirection.OUTPUT, SignalKind.ANALOG,
                               pins=("X",)))

    def test_unknown_lookup_raises(self, signals):
        with pytest.raises(SignalError):
            signals.get("NO_SUCH_SIGNAL")

    def test_initial_statuses(self, signals):
        initial = signals.initial_statuses
        assert initial["DS_FL"] == "Closed"
        assert initial["NIGHT"] == "0"

    def test_pins_enumeration(self, signals):
        pins = signals.pins()
        assert "DS_FL" in pins and "INT_ILL_F" in pins and "INT_ILL_R" in pins

    def test_signal_for_pin(self, signals):
        assert signals.signal_for_pin("int_ill_r").name == "INT_ILL"
        with pytest.raises(SignalError):
            signals.signal_for_pin("nonexistent")


class TestStatusDefinition:
    def test_from_cells_numeric(self):
        status = StatusDefinition.from_cells("Ho", "get_u", "u", "UBATT", "1", "0,7", "1,1")
        assert status.nominal == 1.0
        assert status.minimum == pytest.approx(0.7)
        assert status.maximum == pytest.approx(1.1)
        assert status.is_relative

    def test_from_cells_payload(self):
        status = StatusDefinition.from_cells("Off", "put_can", "data", nominal="0001B")
        assert status.nominal is None
        assert status.nominal_text == "0001B"

    def test_from_cells_inf(self):
        status = StatusDefinition.from_cells("Closed", "put_r", "r", nominal="INF",
                                             minimum="5000", d1="5000")
        assert status.nominal == float("inf")
        assert status.auxiliary_value("D1") == 5000
        assert status.auxiliary_value("d2") is None

    def test_empty_name_rejected(self):
        with pytest.raises(StatusError):
            StatusDefinition(name="", method="put_r")

    def test_missing_method_rejected(self):
        with pytest.raises(StatusError):
            StatusDefinition(name="X", method="  ")

    def test_as_row_roundtrips_key_cells(self):
        status = StatusDefinition.from_cells("Lo", "get_u", "u", "UBATT", "0", "0", "0,3")
        row = status.as_row()
        assert row[0] == "Lo" and row[1] == "get_u" and row[3] == "UBATT"


class TestStatusTable:
    def test_paper_table_contents(self, statuses):
        assert len(statuses) == 7
        assert set(statuses.names) == {"Off", "Open", "Closed", "0", "1", "Lo", "Ho"}
        assert statuses.get("ho").method == "get_u"

    def test_duplicate_rejected(self, statuses):
        with pytest.raises(StatusError):
            statuses.add(StatusDefinition.from_cells("Lo", "get_u", "u"))

    def test_unknown_lookup_raises(self, statuses):
        with pytest.raises(StatusError):
            statuses.get("Medium")

    def test_methods_and_variables_used(self, statuses):
        assert set(statuses.methods_used()) == {"put_can", "put_r", "get_u"}
        assert statuses.variables_used() == ("UBATT",)

    def test_merge_disjoint(self, statuses):
        extra = StatusTable((StatusDefinition.from_cells("Mid", "get_u", "u", "UBATT",
                                                         "0.5", "0.4", "0.6"),))
        merged = statuses.merged_with(extra)
        assert "Mid" in merged and "Ho" in merged
        assert len(merged) == 8

    def test_merge_identical_redefinition_ok(self, statuses):
        merged = statuses.merged_with(StatusTable((statuses.get("Lo"),)))
        assert len(merged) == 7

    def test_merge_conflicting_raises(self, statuses):
        conflicting = StatusTable((StatusDefinition.from_cells("Lo", "get_u", "u", "UBATT",
                                                               "0", "0", "0,5"),))
        with pytest.raises(StatusError):
            statuses.merged_with(conflicting)

    def test_rows_shape(self, statuses):
        rows = statuses.rows()
        assert len(rows) == 7
        assert all(len(row) == 10 for row in rows)
