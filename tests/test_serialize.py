"""Tests for repro.teststand.serialize: the report dict round-trip.

The persistent result store, the JSON API and ``repro-campaign --format
json`` all stand on one contract: ``ExecutionReport.to_dict()`` /
``from_dict()`` reproduce the rendered verdict table byte-for-byte, emit
stable key order and carry an explicit schema version.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main_campaign
from repro.core.errors import ReproError
from repro.targets import CampaignSpec, run_campaign
from repro.teststand import (
    REPORT_SCHEMA,
    ExecutionReport,
    report_from_dict,
    report_to_dict,
)


@pytest.fixture(scope="module")
def campaign_result():
    """One real campaign to serialize (module-scoped: it runs hardware)."""
    return run_campaign(CampaignSpec(dut="wiper_ecu"))


def test_report_dict_shape_and_schema(campaign_result):
    report = campaign_result.execution
    document = report.to_dict()
    assert list(document) == [
        "schema", "kind", "backend", "workers", "wall_time",
        "scripts", "jobs",
    ]
    assert document["schema"] == REPORT_SCHEMA
    assert document["kind"] == "execution-report"
    assert len(document["jobs"]) == len(report.results)
    # scripts are deduplicated: a family campaign runs each sheet once per
    # fault group, but the sheet itself is stored once
    assert len(document["scripts"]) < len(document["jobs"])
    # the free function and the method are the same serializer
    assert report_to_dict(report) == document


def test_report_round_trip_is_byte_identical(campaign_result):
    report = campaign_result.execution
    document = report.to_dict()
    restored = ExecutionReport.from_dict(document)
    assert restored.verdict_table() == report.verdict_table()
    assert restored.summary() == report.summary()
    assert restored.backend == report.backend
    assert restored.workers == report.workers
    assert [r.verdict for r in restored.results] == \
        [r.verdict for r in report.results]
    # idempotence: serializing the restored report reproduces the document
    # including key order (compared on the rendered JSON text)
    assert json.dumps(restored.to_dict(), sort_keys=False) == \
        json.dumps(document, sort_keys=False)
    # survives an actual JSON wire trip
    wired = ExecutionReport.from_dict(json.loads(json.dumps(document)))
    assert wired.verdict_table() == report.verdict_table()
    assert report_from_dict(document).summary() == report.summary()


def test_restored_report_refuses_to_rerun(campaign_result):
    """A deserialized report is a record, not a runnable campaign: its
    factory placeholders must refuse loudly instead of building a wrong
    harness silently."""
    restored = ExecutionReport.from_dict(campaign_result.execution.to_dict())
    job = restored.results[0].job
    with pytest.raises(ReproError):
        job.harness_factory()


def test_unknown_schema_rejected(campaign_result):
    document = campaign_result.execution.to_dict()
    document["schema"] = REPORT_SCHEMA + 999
    with pytest.raises(ReproError):
        ExecutionReport.from_dict(document)


def test_campaign_cli_json_format(capsys):
    assert main_campaign(["--dut", "wiper_ecu", "--format", "json"]) == 0
    captured = capsys.readouterr()
    document = json.loads(captured.out)
    assert document["kind"] == "campaign-result"
    assert document["dut"] == "wiper_ecu"
    assert document["store_run_id"] is None
    assert document["execution"]["schema"] == REPORT_SCHEMA
    # the rendered table/summary in the document are the text-mode stdout
    capsys.readouterr()
    assert main_campaign(["--dut", "wiper_ecu"]) == 0
    text_out = capsys.readouterr().out
    assert text_out == document["table"] + "\n" + document["summary"] + "\n"
