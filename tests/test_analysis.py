"""Tests for the analysis extensions: coverage, traceability, reuse, faults."""

from __future__ import annotations

import pytest

from repro.analysis import (
    FaultCampaign,
    Requirement,
    RequirementCatalogue,
    central_locking_faults,
    compare_suites,
    compute_coverage,
    interior_light_faults,
    script_portability,
    trace_requirements,
    vocabulary_reuse,
)
from repro.core import Compiler
from repro.dut import InteriorLightEcu, LoadSpec, TestHarness, body_can_database
from repro.paper import (
    extended_suite,
    locking_suite,
    paper_signal_set,
    paper_suite,
)
from repro.teststand import build_paper_stand


def _interior_harness(ecu):
    return TestHarness(ecu, body_can_database(),
                       loads=(LoadSpec("INT_ILL_F", "INT_ILL_R", 6.0),))


class TestCoverage:
    def test_paper_suite_coverage(self):
        report = compute_coverage(paper_suite())
        assert report.status_coverage == 1.0
        assert report.signal_checked["INT_ILL"] > 0
        # The rear doors are never stimulated by the paper's single sheet.
        assert "DS_RL" in report.unstimulated_inputs
        assert "DS_RR" in report.unstimulated_inputs
        assert not report.unchecked_outputs

    def test_extended_suite_closes_the_gap(self):
        report = compute_coverage(extended_suite())
        assert not report.unstimulated_inputs
        assert report.signal_coverage == 1.0

    def test_requirements_counted(self):
        report = compute_coverage(extended_suite())
        assert "REQ_INT_ILL" in report.requirements
        assert report.requirements["REQ_INT_ILL_TIMEOUT"] > 0

    def test_summary_is_text(self):
        assert "coverage of" in compute_coverage(paper_suite()).summary()


class TestTraceability:
    def _catalogue(self):
        return RequirementCatalogue((
            Requirement("REQ_INT_ILL", "illumination follows doors and night"),
            Requirement("REQ_INT_ILL_DOORS", "each door triggers the illumination"),
            Requirement("REQ_INT_ILL_TIMEOUT", "switch-off after 300 s"),
            Requirement("REQ_INT_ILL_UBATT", "limits relative to supply"),
            Requirement("REQ_INT_ILL_DIMMING", "smooth dimming"),
        ), component="interior light")

    def test_paper_suite_traceability(self):
        report = trace_requirements(paper_suite(), self._catalogue())
        assert "REQ_INT_ILL" in report.covered
        assert "REQ_INT_ILL_DIMMING" in report.uncovered
        assert report.coverage < 1.0

    def test_extended_suite_traceability(self):
        report = trace_requirements(extended_suite(), self._catalogue())
        assert set(report.covered) >= {"REQ_INT_ILL", "REQ_INT_ILL_DOORS",
                                       "REQ_INT_ILL_TIMEOUT", "REQ_INT_ILL_UBATT"}
        assert report.coverage == pytest.approx(4 / 5)

    def test_dangling_reference_detected(self):
        from repro.core.testdef import TestDefinition, TestSuite
        from repro.paper import paper_signal_set, paper_status_table

        test = TestDefinition("t", requirement="REQ_TYPO")
        test.add_step(0.5, {"DS_FL": "Open"})
        suite = TestSuite("interior_light_ecu", paper_signal_set(), paper_status_table(), (test,))
        report = trace_requirements(suite, self._catalogue())
        assert "REQ_TYPO" in report.dangling

    def test_duplicate_requirement_rejected(self):
        catalogue = self._catalogue()
        with pytest.raises(Exception):
            catalogue.add(Requirement("REQ_INT_ILL", "again"))


class TestReuse:
    def test_interior_vs_locking_share_vocabulary(self):
        report = compare_suites(paper_suite(), locking_suite())
        assert set(report.shared_statuses) >= {"open", "closed", "lo", "ho", "0", "1", "off"}
        assert "put_r" in report.shared_methods and "get_u" in report.shared_methods
        assert report.status_jaccard > 0.4

    def test_vocabulary_reuse_fraction(self):
        usage = vocabulary_reuse([paper_suite(), extended_suite(), locking_suite()])
        assert usage["lo"] == 1.0 and usage["ho"] == 1.0
        assert usage["lock"] == pytest.approx(1 / 3)

    def test_script_portability_is_total_for_compiled_scripts(self):
        suite = paper_suite()
        script = Compiler().compile_test(suite, "interior_illumination")
        stand = build_paper_stand()
        stand_entities = list(stand.resources.names) + [
            route.connector.label for route in stand.connections]
        assert script_portability(script, stand_entities) == 1.0

    def test_self_comparison_is_full_reuse(self):
        report = compare_suites(paper_suite(), paper_suite())
        assert report.status_jaccard == 1.0
        assert report.assignment_jaccard == 1.0


class TestFaultCampaign:
    @pytest.fixture(scope="class")
    def paper_campaign_result(self):
        suite = paper_suite()
        scripts = Compiler().compile_suite(suite)
        campaign = FaultCampaign(scripts, paper_signal_set(), build_paper_stand,
                                 _interior_harness, InteriorLightEcu)
        return campaign.run(interior_light_faults())

    @pytest.fixture(scope="class")
    def extended_campaign_result(self):
        suite = extended_suite()
        scripts = Compiler().compile_suite(suite)
        campaign = FaultCampaign(scripts, paper_signal_set(), build_paper_stand,
                                 _interior_harness, InteriorLightEcu)
        return campaign.run(interior_light_faults())

    def test_baseline_is_clean(self, paper_campaign_result):
        assert paper_campaign_result.baseline_clean

    def test_paper_suite_detects_most_faults(self, paper_campaign_result):
        assert paper_campaign_result.detection_rate >= 0.8
        assert "lamp_stuck_off" in paper_campaign_result.detected
        assert "timer_never_expires" in paper_campaign_result.detected

    def test_paper_suite_misses_ds_fr_fault(self, paper_campaign_result):
        # The paper's sheet only exercises DS_FR by day, so this one escapes.
        assert "ignores_ds_fr" in paper_campaign_result.undetected

    def test_extended_suite_detects_everything(self, extended_campaign_result):
        assert extended_campaign_result.detection_rate == 1.0
        assert not extended_campaign_result.undetected

    def test_expectations_recorded(self, paper_campaign_result):
        assert all(outcome.as_expected for outcome in paper_campaign_result.outcomes)

    def test_table_and_summary_render(self, paper_campaign_result):
        table = paper_campaign_result.table()
        assert "lamp_stuck_off" in table
        assert "fault campaign" in paper_campaign_result.summary()

    def test_fault_catalogue_api(self):
        catalogue = interior_light_faults()
        assert len(catalogue) == 9
        assert catalogue.get("inverted_night").build().__class__.__name__
        with pytest.raises(Exception):
            catalogue.get("not_a_fault")

    def test_central_locking_catalogue_builds(self):
        for fault in central_locking_faults():
            ecu = fault.build()
            assert ecu.name == "central_locking_ecu"
