"""Tests for the compiler, XML generation/parsing and script validation."""

from __future__ import annotations

import io

import pytest
from hypothesis import given, strategies as st

from repro.core import (
    CompileError,
    CompileOptions,
    Compiler,
    MethodCall,
    ScriptError,
    ScriptStep,
    SignalAction,
    TestScript,
    script_from_string,
    script_to_string,
    signal_fragment,
    validate_script,
    validate_suite,
)
from repro.core.testdef import TestDefinition, TestSuite
from repro.core.xmlgen import write_script
from repro.core.xmlparse import read_script
from repro.paper import paper_signal_set, paper_status_table, paper_xml_snippet_action


class TestCompiler:
    def test_step_count_matches_sheet(self, suite, script):
        assert len(script.steps) == 10
        assert script.dut == "interior_light_ecu"

    def test_step0_contains_all_five_actions(self, script):
        step0 = script.steps[0]
        assert len(step0.actions) == 5
        assert {a.signal for a in step0.actions} == {"ign_st", "ds_fl", "ds_fr", "night", "int_ill"}

    def test_measurements_ordered_after_stimuli(self, script):
        for step in script.steps:
            kinds = ["get" if a.method.startswith("get") else "put" for a in step.actions]
            if "get" in kinds:
                first_get = kinds.index("get")
                assert all(kind == "get" for kind in kinds[first_get:])

    def test_ho_limits_are_relative_expressions(self, script):
        step4 = script.steps[4]
        int_ill = step4.actions_for("int_ill")[0]
        assert int_ill.call.param("u_min") == "(0.7*ubatt)"
        assert int_ill.call.param("u_max") == "(1.1*ubatt)"

    def test_setup_contains_stimuli_only(self, script):
        methods = {action.method for action in script.setup}
        assert "get_u" not in methods
        assert "put_can" in methods and "put_r" in methods

    def test_variables_declared(self, script):
        assert "ubatt" in script.variables

    def test_direction_check_rejects_stimulus_on_output(self, suite):
        bad = TestDefinition("bad")
        bad.add_step(0.5, {"INT_ILL": "Open"})   # put_r on an output signal
        broken = TestSuite("interior_light_ecu", paper_signal_set(), paper_status_table(), (bad,))
        with pytest.raises(CompileError):
            Compiler().compile_test(broken, "bad")

    def test_direction_check_rejects_measurement_on_input(self):
        bad = TestDefinition("bad")
        bad.add_step(0.5, {"DS_FL": "Lo"})       # get_u on an input signal
        broken = TestSuite("interior_light_ecu", paper_signal_set(), paper_status_table(), (bad,))
        with pytest.raises(CompileError):
            Compiler().compile_test(broken, "bad")

    def test_direction_check_can_be_disabled(self):
        bad = TestDefinition("bad")
        bad.add_step(0.5, {"DS_FL": "Lo"})
        broken = TestSuite("interior_light_ecu", paper_signal_set(), paper_status_table(), (bad,))
        options = CompileOptions(check_directions=False)
        script = Compiler(options=options).compile_test(broken, "bad")
        assert script.steps[0].actions[0].method == "get_u"

    def test_unknown_status_method_strictness(self):
        from repro.core.status import StatusDefinition, StatusTable

        statuses = paper_status_table()
        statuses.add(StatusDefinition.from_cells("Weird", "put_lin", "data", nominal="1"))
        test = TestDefinition("t")
        test.add_step(0.5, {"NIGHT": "Weird"})
        suite = TestSuite("interior_light_ecu", paper_signal_set(), statuses, (test,))
        with pytest.raises(CompileError):
            Compiler().compile_test(suite, "t")
        script = Compiler(options=CompileOptions(strict_statuses=False)).compile_test(suite, "t")
        assert script.steps[0].actions[0].method == "put_lin"

    def test_compile_suite_compiles_all(self, suite):
        scripts = Compiler().compile_suite(suite)
        assert len(scripts) == len(suite)

    def test_no_setup_option(self, suite):
        script = Compiler(options=CompileOptions(emit_setup=False)).compile_test(
            suite, "interior_illumination")
        assert script.setup == ()


class TestXmlRoundtrip:
    def test_roundtrip_paper_script(self, script):
        text = script_to_string(script)
        parsed = script_from_string(text)
        assert parsed == script
        assert parsed.variables == script.variables
        assert parsed.metadata == script.metadata

    def test_paper_snippet_fragment(self):
        fragment = signal_fragment(paper_xml_snippet_action())
        assert '<signal name="int_ill">' in fragment
        assert 'u_max="(1.1*ubatt)"' in fragment
        assert 'u_min="(0.7*ubatt)"' in fragment
        assert "<get_u" in fragment

    def test_write_and_read_file(self, script, tmp_path):
        path = tmp_path / "script.xml"
        write_script(script, str(path))
        assert read_script(str(path)) == script

    def test_write_to_stream(self, script):
        buffer = io.StringIO()
        write_script(script, buffer)
        assert script_from_string(buffer.getvalue()) == script

    def test_malformed_xml_raises(self):
        with pytest.raises(ScriptError):
            script_from_string("<testscript name='x' dut='y'><steps><step></steps></testscript>")

    def test_wrong_root_raises(self):
        with pytest.raises(ScriptError):
            script_from_string("<notascript/>")

    def test_signal_without_method_raises(self):
        text = ('<testscript name="t" dut="d"><steps>'
                '<step number="0" dt="1"><signal name="x"/></step></steps></testscript>')
        with pytest.raises(ScriptError):
            script_from_string(text)

    def test_missing_step_number_raises(self):
        text = ('<testscript name="t" dut="d"><steps>'
                '<step dt="1"/></steps></testscript>')
        with pytest.raises(ScriptError):
            script_from_string(text)

    @given(st.lists(
        st.tuples(
            st.sampled_from(["ds_fl", "ds_fr", "night", "int_ill"]),
            st.sampled_from(["put_r", "get_u", "put_can"]),
            st.dictionaries(st.sampled_from(["r", "u_min", "u_max", "data"]),
                            st.sampled_from(["0.5", "INF", "(0.7*ubatt)", "0001B"]),
                            max_size=3),
        ),
        min_size=0, max_size=6,
    ))
    def test_roundtrip_random_scripts(self, actions):
        steps = [ScriptStep(
            number=index,
            duration=0.5,
            actions=tuple(SignalAction(sig, MethodCall(method, params))
                          for sig, method, params in actions),
        ) for index in range(3)]
        script = TestScript("random", "some_ecu", steps)
        assert script_from_string(script_to_string(script)) == script


class TestScriptModel:
    def test_duplicate_step_numbers_rejected(self):
        script = TestScript("t", "d", [ScriptStep(0, 1.0)])
        with pytest.raises(ScriptError):
            script.append(ScriptStep(0, 1.0))

    def test_total_duration_and_counts(self, script):
        assert script.total_duration == pytest.approx(309.0)
        assert script.action_count() == len(script.setup) + sum(
            len(step.actions) for step in script.steps)

    def test_methods_and_signals_used(self, script):
        assert set(script.methods_used()) >= {"put_r", "put_can", "get_u"}
        assert "int_ill" in script.signals_used()

    def test_method_call_params_are_readonly(self):
        call = MethodCall("get_u", {"u_min": "0"})
        with pytest.raises(TypeError):
            call.params["u_min"] = "1"  # type: ignore[index]


class TestValidation:
    def test_paper_suite_is_clean_of_errors(self, suite):
        issues = validate_suite(suite)
        assert not [issue for issue in issues if issue.is_error]

    def test_paper_script_is_clean_of_errors(self, script):
        issues = validate_script(script)
        assert not [issue for issue in issues if issue.is_error]

    def test_unknown_status_reported(self, suite):
        bad = TestDefinition("bad")
        bad.add_step(0.5, {"DS_FL": "HalfOpen"})
        broken = TestSuite("x", paper_signal_set(), paper_status_table(), (bad,))
        issues = validate_suite(broken)
        assert any("HalfOpen" in issue.message for issue in issues if issue.is_error)

    def test_direction_mismatch_reported(self):
        bad = TestDefinition("bad")
        bad.add_step(0.5, {"INT_ILL": "Open"})
        broken = TestSuite("x", paper_signal_set(), paper_status_table(), (bad,))
        issues = validate_suite(broken)
        assert any("stimulus" in issue.message for issue in issues if issue.is_error)

    def test_undeclared_variable_reported(self):
        step = ScriptStep(0, 1.0, (SignalAction("int_ill",
                                                MethodCall("get_u", {"u_min": "(0.7*usupply)",
                                                                     "u_max": "12"})),))
        script = TestScript("t", "d", [step], variables=("ubatt",))
        # usupply is referenced by the expression, therefore auto-declared by
        # TestScript itself; simulate a hand-written script with a stale header.
        script._variables = ("ubatt",)
        issues = validate_script(script)
        assert any("usupply" in issue.message for issue in issues if issue.is_error)

    def test_unknown_method_is_warning_not_error(self):
        step = ScriptStep(0, 1.0, (SignalAction("x", MethodCall("put_lin", {"data": "1"})),))
        script = TestScript("t", "d", [step])
        issues = validate_script(script)
        assert issues and all(not issue.is_error for issue in issues)
