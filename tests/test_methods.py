"""Tests for the method vocabulary and parameter construction."""

from __future__ import annotations

import pytest

from repro.core.errors import MethodError
from repro.core.status import StatusDefinition
from repro.core.values import Interval
from repro.methods import (
    GET_U,
    PUT_CAN,
    PUT_R,
    MethodKind,
    MethodOutcome,
    MethodRegistry,
    MethodSpec,
    ParameterRole,
    ParameterSpec,
    default_registry,
    evaluate_parameter,
    limits_from_params,
)


class TestMethodSpec:
    def test_kinds(self):
        assert PUT_R.is_stimulus and not PUT_R.is_measurement
        assert GET_U.is_measurement and not GET_U.is_stimulus

    def test_parameter_lookup(self):
        assert GET_U.parameter("U_MIN").role is ParameterRole.MINIMUM
        with pytest.raises(MethodError):
            GET_U.parameter("r")

    def test_validate_params_ok(self):
        GET_U.validate_params({"u_min": "0", "u_max": "1"})

    def test_validate_params_unknown(self):
        with pytest.raises(MethodError):
            GET_U.validate_params({"u_min": "0", "u_max": "1", "volume": "11"})

    def test_validate_params_missing_required(self):
        with pytest.raises(MethodError):
            GET_U.validate_params({"u_min": "0"})

    def test_empty_name_rejected(self):
        with pytest.raises(MethodError):
            MethodSpec("", MethodKind.STIMULUS, "x")


class TestParamsFromStatus:
    def test_get_u_relative(self):
        status = StatusDefinition.from_cells("Ho", "get_u", "u", "UBATT", "1", "0,7", "1,1")
        params = GET_U.params_from_status(status)
        assert params == {"u_min": "(0.7*ubatt)", "u_max": "(1.1*ubatt)"}

    def test_get_u_absolute(self):
        status = StatusDefinition.from_cells("Mid", "get_u", "u", "", "6", "5", "7")
        params = GET_U.params_from_status(status)
        assert params == {"u_min": "5", "u_max": "7"}

    def test_put_r_with_acceptance(self):
        status = StatusDefinition.from_cells("Open", "put_r", "r", "", "0,5", "0", "2")
        params = PUT_R.params_from_status(status)
        assert params["r"] == "0.5"
        assert params["r_min"] == "0" and params["r_max"] == "2"

    def test_put_r_inf(self):
        status = StatusDefinition.from_cells("Closed", "put_r", "r", "", "INF", "5000", "INF")
        params = PUT_R.params_from_status(status)
        assert params["r"] == "INF"
        assert params["r_min"] == "5000"

    def test_put_can_payload(self):
        status = StatusDefinition.from_cells("Off", "put_can", "data", nominal="0001B")
        assert PUT_CAN.params_from_status(status) == {"data": "0001B"}

    def test_missing_required_value_raises(self):
        status = StatusDefinition.from_cells("Broken", "get_u", "u", "UBATT", None, None, "1,1")
        with pytest.raises(MethodError):
            GET_U.params_from_status(status)


class TestRegistry:
    def test_default_contents(self):
        registry = default_registry()
        for name in ("put_r", "put_u", "get_u", "get_r", "get_i", "put_can", "get_can", "wait"):
            assert name in registry

    def test_case_insensitive_lookup(self):
        assert default_registry().get("GET_U").name == "get_u"

    def test_duplicate_registration_rejected(self):
        registry = default_registry()
        with pytest.raises(MethodError):
            registry.register(GET_U)

    def test_replace_allowed(self):
        registry = default_registry()
        registry.register(GET_U, replace=True)
        assert registry.get("get_u") is GET_U

    def test_unknown_method_raises(self):
        with pytest.raises(MethodError):
            default_registry().get("put_quantum")

    def test_stimuli_and_measurements_partition(self):
        registry = default_registry()
        stimuli = {m.name for m in registry.stimuli()}
        measurements = {m.name for m in registry.measurements()}
        assert "put_r" in stimuli and "get_u" in measurements
        assert not stimuli & measurements

    def test_copy_is_independent(self):
        registry = default_registry()
        copy = registry.copy()
        copy.register(MethodSpec("put_lin", MethodKind.STIMULUS, "data"))
        assert "put_lin" in copy and "put_lin" not in registry


class TestParameterHelpers:
    def test_evaluate_parameter_number(self):
        assert evaluate_parameter({"r": "0,5"}, "r") == 0.5

    def test_evaluate_parameter_expression(self):
        assert evaluate_parameter({"u_min": "(0.7*ubatt)"}, "u_min", {"ubatt": 10}) == pytest.approx(7)

    def test_evaluate_parameter_missing_returns_default(self):
        assert evaluate_parameter({}, "r", default=3.0) == 3.0
        assert evaluate_parameter({}, "r") is None

    def test_evaluate_parameter_case_insensitive(self):
        assert evaluate_parameter({"R_MAX": "10"}, "r_max") == 10

    def test_limits_from_params(self):
        limits = limits_from_params({"u_min": "(0.7*ubatt)", "u_max": "(1.1*ubatt)"}, "u",
                                    {"ubatt": 12})
        assert limits.low == pytest.approx(8.4)
        assert limits.high == pytest.approx(13.2)

    def test_limits_one_sided(self):
        limits = limits_from_params({"r_min": "5000"}, "r")
        assert limits.low == 5000 and limits.high == float("inf")

    def test_limits_swapped_bounds_normalised(self):
        limits = limits_from_params({"u_min": "10", "u_max": "5"}, "u")
        assert limits.low == 5 and limits.high == 10


class TestMethodOutcome:
    def test_bool_and_describe(self):
        ok = MethodOutcome("get_u", True, observed=11.9, limits=Interval(8.4, 13.2), unit="V")
        bad = MethodOutcome("get_u", False, observed=0.1)
        assert ok and not bad
        assert "PASS" in ok.describe() and "FAIL" in bad.describe()
        assert "11.9" in ok.describe()
