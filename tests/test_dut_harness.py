"""Tests for the DUT harness (electrical + CAN wiring around an ECU model)."""

from __future__ import annotations

import math

import pytest

from repro.core.errors import HarnessError
from repro.dut import InteriorLightEcu, LoadSpec, TestHarness, body_can_database
from repro.paper import build_paper_harness


class TestElectricalPath:
    def test_lamp_off_reads_near_zero(self, harness):
        assert harness.measure_voltage(("INT_ILL_F", "INT_ILL_R")) == pytest.approx(0.0, abs=0.1)

    def test_lamp_on_reads_near_ubatt(self, harness):
        harness.send_can_signal("NIGHT", 1)
        harness.apply_resistance("DS_FL", 0.5)
        voltage = harness.measure_voltage(("INT_ILL_F", "INT_ILL_R"))
        assert 0.7 * harness.ubatt <= voltage <= 1.1 * harness.ubatt

    def test_lamp_voltage_scales_with_ubatt(self):
        readings = {}
        for ubatt in (9.0, 12.0, 16.0):
            harness = build_paper_harness(ubatt=ubatt)
            harness.send_can_signal("NIGHT", 1)
            harness.apply_resistance("DS_FL", 0.5)
            readings[ubatt] = harness.measure_voltage(("INT_ILL_F", "INT_ILL_R"))
        for ubatt, voltage in readings.items():
            assert 0.9 * ubatt <= voltage <= 1.02 * ubatt

    def test_measure_current_through_lamp(self, harness):
        harness.send_can_signal("NIGHT", 1)
        harness.apply_resistance("DS_FL", 0.5)
        current = harness.measure_current("INT_ILL_F")
        # roughly UBATT / (lamp 6 Ohm + driver 0.2 Ohm + return 0.1 Ohm)
        assert current == pytest.approx(12.0 / 6.3, rel=0.1)

    def test_measure_current_zero_when_off(self, harness):
        assert harness.measure_current("INT_ILL_F") == 0.0

    def test_release_resistance_opens_contact(self, harness):
        harness.send_can_signal("NIGHT", 1)
        harness.apply_resistance("DS_FL", 0.5)
        assert harness.ecu.illumination_on
        harness.release_resistance("DS_FL")
        assert not harness.ecu.illumination_on
        assert harness.applied_resistance("DS_FL") is None

    def test_measure_resistance(self, harness):
        assert harness.measure_resistance("DS_FL") == math.inf
        harness.apply_resistance("DS_FL", 47.0)
        assert harness.measure_resistance("DS_FL") == 47.0

    def test_unknown_pin_rejected(self, harness):
        with pytest.raises(HarnessError):
            harness.apply_resistance("NO_SUCH_PIN", 1.0)
        with pytest.raises(HarnessError):
            harness.measure_voltage("NO_SUCH_PIN")

    def test_negative_values_rejected(self, harness):
        with pytest.raises(HarnessError):
            harness.apply_resistance("DS_FL", -1.0)
        with pytest.raises(HarnessError):
            harness.advance(-0.1)
        with pytest.raises(HarnessError):
            harness.set_ubatt(-5.0)


class TestCanPath:
    def test_send_signal_reaches_ecu(self, harness):
        harness.send_can_signal("NIGHT", 1)
        assert harness.ecu.night
        harness.send_can_signal("NIGHT", 0)
        assert not harness.ecu.night

    def test_send_payload_reaches_ecu(self, harness):
        harness.send_can_payload("IGN_STATUS", 2)
        assert harness.ecu.ignition == 2

    def test_signal_update_preserves_other_bits(self, harness):
        harness.send_can_signal("BRIGHTNESS", 42)
        harness.send_can_signal("NIGHT", 1)
        # The ECU decodes the full message; both values must survive.
        assert harness.ecu.rx_signal("LIGHT_SENSOR", "BRIGHTNESS") == 42
        assert harness.ecu.night

    def test_ecu_transmissions_visible_to_stand(self):
        from repro.dut import CentralLockingEcu

        harness = TestHarness(CentralLockingEcu(), body_can_database(),
                              loads=(LoadSpec("LOCK_LED", ohms=500.0),))
        harness.send_can_payload("LOCK_COMMAND", 1)
        assert harness.last_can_signal("LOCK_STATUS", "LOCKED") == 1.0
        assert harness.last_can_payload("LOCK_STATUS") == 1

    def test_missing_db_raises(self):
        harness = TestHarness(InteriorLightEcu(), None)
        with pytest.raises(HarnessError):
            harness.send_can_payload("IGN_STATUS", 1)


class TestTimeAndSupply:
    def test_advance_moves_ecu_time(self, harness):
        harness.advance(5.0)
        assert harness.now == 5.0
        assert harness.ecu.now == 5.0

    def test_timeout_via_harness(self, harness):
        harness.send_can_signal("NIGHT", 1)
        harness.apply_resistance("DS_FL", 0.5)
        harness.advance(299.0)
        assert harness.measure_voltage(("INT_ILL_F", "INT_ILL_R")) > 8.0
        harness.advance(2.0)
        assert harness.measure_voltage(("INT_ILL_F", "INT_ILL_R")) < 1.0

    def test_set_ubatt_powers_ecu(self, harness):
        harness.set_ubatt(0.0)
        assert not harness.ecu.powered
        harness.set_ubatt(12.0)
        assert harness.ecu.powered

    def test_variables(self, harness):
        harness.advance(2.5)
        variables = harness.variables()
        assert variables["ubatt"] == 12.0 and variables["t"] == 2.5

    def test_reset_clears_stimuli(self, harness):
        harness.send_can_signal("NIGHT", 1)
        harness.apply_resistance("DS_FL", 0.5)
        harness.reset()
        assert not harness.ecu.illumination_on
        assert harness.applied_resistance("DS_FL") is None

    def test_add_load_validates_pins(self, harness):
        with pytest.raises(HarnessError):
            harness.add_load(LoadSpec("NO_SUCH", ohms=10.0))
        harness.add_load(LoadSpec("INT_ILL_F", ohms=100.0))
        assert len(harness.loads) == 2

    def test_loadspec_validation(self):
        with pytest.raises(HarnessError):
            LoadSpec("a", ohms=0.0)
