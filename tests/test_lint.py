"""Tests for repro.lint, the whole-program static analyzer.

One positive (rule fires on a seeded defect) and one negative (bundled
registry stays clean) fixture per rule family, plus

* the tier-1 registry guard: all bundled targets lint clean except the
  documented ``ignores_ds_fr`` escape, which the coverage rule must
  *independently re-derive* (note severity, exit 0),
* the acceptance-criteria seeded defects - unknown-variable limit
  expression, empty capability window, unpicklable process-backend
  factory - each caught by a distinct rule with CLI exit code 2,
* the satellite contracts: Interval edge semantics, the shared
  unresolved-signal message text, ``preflight="lint"``, the CLI filters
  and JSON shape, and ``--list-targets --lint``.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.analysis.faults import FaultCatalogue, FaultModel
from repro.can import CanDatabase, MessageDefinition
from repro.cli import main_campaign
from repro.core.compiler import Compiler
from repro.core.errors import ConfigurationError, ValueError_
from repro.core.script import MethodCall, SignalAction, TestScript
from repro.core.signals import Signal, SignalDirection, SignalKind, SignalSet
from repro.core.status import StatusDefinition, StatusTable
from repro.core.testdef import TestDefinition, TestSuite
from repro.core.values import Interval
from repro.dut import InstrumentClusterEcu, TestHarness
from repro.dut.interior_light import InteriorLightEcu
from repro.dut.messages import body_can_database
from repro.lint import (
    ALL_RULES,
    LintError,
    blocking_execute_calls,
    preflight_lint,
    preflight_lint_composition,
    run_lint,
)
from repro.lint.cli import main as lint_main
from repro.paper.example import (
    PAPER_TEST_NAME,
    interior_harness,
    paper_signal_set,
    paper_status_table,
    paper_suite,
)
from repro.paper import cluster_suite
from repro.paper.composed import (
    COMPOSITION_NAME,
    composed_signal_set,
    composed_suite,
)
from repro.targets import (
    CompositionTarget,
    DutTarget,
    RunSpec,
    TargetError,
    derive_signal_set,
    register_dut,
    run_single,
    unregister_dut,
    unresolved_signal_message,
)

# ---------------------------------------------------------------------------
# Module-level toy fixtures (module-level so X-UNPICKLABLE-FACTORY stays
# quiet about the fixtures themselves)
# ---------------------------------------------------------------------------


def _toy_suite(extra_statuses, steps, *, signals=None,
               dut="interior_light_ecu"):
    statuses = list(paper_status_table()) + list(extra_statuses)
    test = TestDefinition("toy_sheet")
    for duration, assignments in steps:
        test.add_step(duration, assignments)
    return TestSuite(
        dut,
        signals if signals is not None else paper_signal_set(),
        StatusTable(statuses, name="toy"),
        (test,),
    )


def bad_variable_suite():
    """Seeded defect 1: a limit expression over a phantom stand variable."""
    return _toy_suite(
        (StatusDefinition.from_cells(
            "Weird", "get_u", "u", variable="UPHANTOM",
            nominal="1", minimum="0,7", maximum="1,1"),),
        [(0.5, {"DS_FL": "Open", "INT_ILL": "Weird"})],
    )


def preflight_bad_suite():
    """bad_variable_suite, but carrying the toy registration's DUT name so
    run_single resolves the broken target rather than the bundled one."""
    return _toy_suite(
        (StatusDefinition.from_cells(
            "Weird", "get_u", "u", variable="UPHANTOM",
            nominal="1", minimum="0,7", maximum="1,1"),),
        [(0.5, {"DS_FL": "Open", "INT_ILL": "Weird"})],
        dut="toy_preflight",
    )


def unservable_suite():
    """Seeded defect 2: an acceptance window no instrument can serve."""
    return _toy_suite(
        (StatusDefinition.from_cells(
            "Huge", "get_u", "u",
            nominal="550", minimum="500", maximum="600"),),
        [
            (0.5, {"DS_FL": "Open", "INT_ILL": "Huge"}),
            (0.5, {"DS_FL": "Closed", "INT_ILL": "Lo"}),
        ],
    )


def empty_interval_suite():
    return _toy_suite(
        (StatusDefinition.from_cells(
            "Inverted", "get_u", "u", variable="UBATT",
            nominal="1", minimum="1,1", maximum="0,7"),),
        [(0.5, {"DS_FL": "Open", "INT_ILL": "Inverted"})],
    )


def ghost_pin_signals():
    signals = list(paper_signal_set())
    signals.append(Signal("GHOST", SignalDirection.INPUT, SignalKind.RESISTIVE,
                          pins=("NO_SUCH_PIN",)))
    return SignalSet(signals, dut="interior_light_ecu")


def ghost_pin_suite():
    return _toy_suite((), [(0.5, {"DS_FL": "Open", "INT_ILL": "Lo"})],
                      signals=ghost_pin_signals())


def phantom_signal_suite():
    """Seeded VM gap: the sheet drives a signal the DUT's own signal sheet
    lacks.  The suite carries the extra signal so it compiles, but at run
    time resolution fails per action (classic path: per-action ERROR) and
    the bytecode VM refuses the whole combination at compile time."""
    signals = SignalSet(
        tuple(paper_signal_set()) + (
            Signal("PHANTOM", SignalDirection.OUTPUT, SignalKind.ANALOG,
                   pins=("INT_ILL_F",), initial_status="Lo"),
        ),
        dut="interior_light_ecu",
    )
    return _toy_suite((), [(0.5, {"DS_FL": "Open", "PHANTOM": "Lo"})],
                      signals=signals)


class ToyMaskedDoorEcu(InteriorLightEcu):
    """The paper's masking fault shape: DS_FR dropped from the door scan."""

    DOOR_PINS = ("DS_FL", "DS_RL", "DS_RR")


def masked_door_catalogue(expected_detected):
    def build():
        return FaultCatalogue(
            "interior_light_ecu",
            (FaultModel("toy_masked_door", "front-right door ignored",
                        ToyMaskedDoorEcu, expected_detected=expected_detected),),
        )
    return build


def masked_detected_catalogue():
    return masked_door_catalogue(True)()


def masked_escape_catalogue():
    return masked_door_catalogue(False)()


def opaque_escape_catalogue():
    return FaultCatalogue(
        "interior_light_ecu",
        (FaultModel("toy_opaque", "not introspectable",
                    _opaque_fault_factory, expected_detected=False),),
    )


def _opaque_fault_factory():
    return InteriorLightEcu()


def isolating_suite():
    """A suite whose PRIMARY sheet isolates DS_FR with a checked output."""
    return _toy_suite(
        (),
        [
            (0.5, {"IGN_ST": "Off", "NIGHT": "1", "DS_FR": "Closed",
                   "INT_ILL": "Lo"}),
            (0.5, {"DS_FR": "Open", "INT_ILL": "Ho"}),
        ],
    )


class _CaseCollidingSuite:
    """Duck-typed suite with two sheets whose names differ only in case.

    ``TestSuite`` itself rejects case-insensitive duplicates at
    construction - which is exactly why X-UNSTORABLE-RESULT exists for
    duck-typed factories like this one.
    """

    def __init__(self):
        base = _toy_suite((), [(0.5, {"DS_FL": "Open", "INT_ILL": "Lo"})])
        self.dut = base.dut
        self.signals = base.signals
        self.statuses = base.statuses
        self._tests = []
        for name in ("Toy_Sheet", "toy_sheet"):
            test = TestDefinition(name)
            test.add_step(0.5, {"DS_FL": "Open", "INT_ILL": "Lo"})
            self._tests.append(test)

    def __iter__(self):
        return iter(self._tests)


def case_colliding_suite():
    return _CaseCollidingSuite()


def baseline_named_catalogue():
    """A fault model whose name collides with the implicit healthy group."""
    return FaultCatalogue(
        "interior_light_ecu",
        (FaultModel("Baseline", "collides with the healthy-ECU group",
                    InteriorLightEcu, expected_detected=True),),
    )


def _register_toy(name, **overrides):
    fields = dict(
        name=name,
        ecu_factory=InteriorLightEcu,
        harness_factory=interior_harness,
        signals_factory=paper_signal_set,
        suite_factory=paper_suite,
    )
    fields.update(overrides)
    return register_dut(DutTarget(**fields))


@pytest.fixture
def toy_dut(request):
    """Register a toy DUT built from marker kwargs; always unregister."""
    registered = []

    def register(name, **overrides):
        target = _register_toy(name, **overrides)
        registered.append(name)
        return target

    yield register
    for name in registered:
        unregister_dut(name)


def _findings(report, rule):
    return [f for f in report.findings if f.rule == rule]


# ---------------------------------------------------------------------------
# Registry-wide tier-1 guard
# ---------------------------------------------------------------------------

def test_registry_lints_clean_except_documented_escape():
    """All bundled targets lint clean; the sole finding is the machine-
    re-derived ignores_ds_fr escape note (which must not affect the exit
    code)."""
    report = run_lint()
    assert report.errors == ()
    assert report.warnings == ()
    assert len(report.notes) == 1
    note = report.notes[0]
    assert note.rule == "C-DOCUMENTED-ESCAPE"
    assert note.dut == "interior_light_ecu"
    assert note.location == "fault:ignores_ds_fr"
    assert "ds_fr" in note.message
    assert "all_doors_at_night" in note.message
    assert report.exit_code == 0


def test_cli_on_registry_is_clean(capsys):
    assert lint_main([]) == 0
    out = capsys.readouterr().out
    assert "C-DOCUMENTED-ESCAPE" in out
    assert "0 error(s), 0 warning(s), 1 note(s)" in out


# ---------------------------------------------------------------------------
# Family E
# ---------------------------------------------------------------------------

def test_unknown_variable_seeded_defect_exits_2(toy_dut):
    toy_dut("toy_bad_var", suite_factory=bad_variable_suite)
    report = run_lint(duts=["toy_bad_var"])
    findings = _findings(report, "E-UNKNOWN-VARIABLE")
    assert len(findings) == 1
    assert "uphantom" in findings[0].message
    assert findings[0].severity == "error"
    assert lint_main(["--dut", "toy_bad_var"]) == 2


def test_empty_interval_reported_at_status_level(toy_dut):
    toy_dut("toy_empty", suite_factory=empty_interval_suite)
    report = run_lint(duts=["toy_empty"])
    findings = _findings(report, "E-EMPTY-INTERVAL")
    assert len(findings) == 1
    assert findings[0].location == "status:Inverted"
    assert report.exit_code == 2


def test_unresolved_signal_uses_shared_message(toy_dut):
    toy_dut("toy_ghost", signals_factory=ghost_pin_signals,
            suite_factory=ghost_pin_suite)
    report = run_lint(duts=["toy_ghost"])
    findings = _findings(report, "E-UNRESOLVED-SIGNAL")
    assert len(findings) == 1
    expected = unresolved_signal_message(
        "GHOST", "the registered signal set", InteriorLightEcu.NAME)
    assert findings[0].message.startswith(expected)


def test_family_e_negative_on_bundled_duts():
    report = run_lint(rules=[r.id for r in ALL_RULES if r.id.startswith("E-")])
    assert report.findings == ()


# ---------------------------------------------------------------------------
# Family R
# ---------------------------------------------------------------------------

def test_unservable_window_seeded_defect_exits_2(toy_dut):
    toy_dut("toy_unservable", suite_factory=unservable_suite)
    report = run_lint(duts=["toy_unservable"])
    unservable = _findings(report, "R-UNSERVABLE-STEP")
    assert len(unservable) == 1
    assert "int_ill.get_u" in unservable[0].location
    # the step after the always-failing one is dead under stop_on_error
    dead = _findings(report, "R-DEAD-STEP")
    assert len(dead) == 1
    assert "step(s) 1" in dead[0].message
    assert lint_main(["--dut", "toy_unservable"]) == 2


def test_family_r_negative_on_bundled_duts():
    report = run_lint(rules=[r.id for r in ALL_RULES if r.id.startswith("R-")])
    assert report.findings == ()


# ---------------------------------------------------------------------------
# Family C
# ---------------------------------------------------------------------------

def test_undetectable_masked_fault_is_an_error(toy_dut):
    # paper suite never isolates DS_FR, so a masked-door fault expected to
    # be detected is a coverage hole the analyzer must prove
    toy_dut("toy_undetectable", faults_factory=masked_detected_catalogue)
    report = run_lint(duts=["toy_undetectable"])
    findings = _findings(report, "C-UNDETECTABLE-FAULT")
    assert len(findings) == 1
    assert findings[0].location == "fault:toy_masked_door"
    assert report.exit_code == 2


def test_stale_escape_detected_when_primary_sheet_isolates(toy_dut):
    toy_dut("toy_stale", faults_factory=masked_escape_catalogue,
            suite_factory=isolating_suite)
    report = run_lint(duts=["toy_stale"])
    findings = _findings(report, "C-STALE-ESCAPE")
    assert len(findings) == 1
    assert report.exit_code == 2


def test_opaque_escape_is_only_a_warning(toy_dut):
    toy_dut("toy_opaque_dut", faults_factory=opaque_escape_catalogue)
    report = run_lint(duts=["toy_opaque_dut"])
    findings = _findings(report, "C-UNVERIFIED-ESCAPE")
    assert len(findings) == 1
    assert findings[0].severity == "warning"
    assert report.exit_code == 1


def test_family_c_negative_on_bundled_duts():
    report = run_lint(rules=[r.id for r in ALL_RULES if r.id.startswith("C-")])
    assert [f.rule for f in report.findings] == ["C-DOCUMENTED-ESCAPE"]


# ---------------------------------------------------------------------------
# Family X
# ---------------------------------------------------------------------------

def test_unpicklable_factory_seeded_defect_exits_2(toy_dut):
    toy_dut("toy_unpicklable", ecu_factory=lambda: InteriorLightEcu())
    report = run_lint(duts=["toy_unpicklable"])
    findings = _findings(report, "X-UNPICKLABLE-FACTORY")
    assert len(findings) == 1
    assert findings[0].location == "factory:ecu_factory"
    assert lint_main(["--dut", "toy_unpicklable"]) == 2


def test_blocking_execute_scan_understands_function_scopes():
    flagged = blocking_execute_calls(
        """
        async def arun(self):
            self.instrument.execute(call)
        """
    )
    assert [line_call[1] for line_call in flagged] == ["self.instrument.execute"]
    # a sync helper nested inside an async function runs in a thread or
    # before the loop - it must not be flagged
    assert blocking_execute_calls(
        """
        async def arun(self):
            def helper():
                return self.instrument.execute(call)
            return await anyio.to_thread(helper)
        """
    ) == ()
    assert blocking_execute_calls(
        """
        def run(self):
            return self.instrument.execute(call)
        """
    ) == ()


def test_family_x_negative_on_bundled_tree():
    # in particular: the interpreter's sync run() path uses execute() and
    # its arun() path uses aexecute() - neither may be flagged
    report = run_lint(rules=[r.id for r in ALL_RULES if r.id.startswith("X-")])
    assert report.findings == ()


def test_unstorable_sheet_case_collision_warns(toy_dut):
    toy_dut("toy_casefold", suite_factory=case_colliding_suite)
    report = run_lint(duts=["toy_casefold"], rules=["X-UNSTORABLE-RESULT"])
    findings = _findings(report, "X-UNSTORABLE-RESULT")
    assert len(findings) == 1
    assert findings[0].location == "sheet:toy_sheet"
    assert "Toy_Sheet" in findings[0].message
    assert "merge" in findings[0].message
    assert report.exit_code == 1


def test_unstorable_baseline_fault_collision_warns(toy_dut):
    toy_dut("toy_baseline_clash", faults_factory=baseline_named_catalogue)
    report = run_lint(duts=["toy_baseline_clash"],
                      rules=["X-UNSTORABLE-RESULT"])
    findings = _findings(report, "X-UNSTORABLE-RESULT")
    assert len(findings) == 1
    assert findings[0].location == "fault:Baseline"
    assert "'baseline'" in findings[0].message
    assert report.exit_code == 1


def test_uncompilable_script_seeded_defect_warns(toy_dut):
    toy_dut("toy_vm_gap", suite_factory=phantom_signal_suite)
    report = run_lint(duts=["toy_vm_gap"], rules=["X-UNCOMPILABLE-SCRIPT"])
    findings = _findings(report, "X-UNCOMPILABLE-SCRIPT")
    # One finding per eligible stand: the defect is in the sheet, so no
    # stand can compile it.
    assert findings
    assert all(f.severity == "warning" for f in findings)
    assert all(f.location.startswith("sheet:toy_sheet stand:")
               for f in findings)
    assert "unknown signal" in findings[0].message
    assert "classic interpreter" in findings[0].message
    assert report.exit_code == 1


def test_uncompilable_script_skips_unservable_pairs(toy_dut):
    """An unallocatable step is R-UNSERVABLE-STEP territory: the classic
    path errors identically, so the VM rule must stay quiet about it."""
    toy_dut("toy_vm_unservable", suite_factory=unservable_suite)
    report = run_lint(duts=["toy_vm_unservable"],
                      rules=["X-UNCOMPILABLE-SCRIPT"])
    assert report.findings == ()
    assert report.exit_code == 0


# ---------------------------------------------------------------------------
# Satellite: Interval edge semantics
# ---------------------------------------------------------------------------

def test_interval_rejects_empty_and_nan_at_construction():
    with pytest.raises(ValueError_):
        Interval(2.0, 1.0)
    with pytest.raises(ValueError_):
        Interval(math.nan, 1.0)
    with pytest.raises(ValueError_):
        Interval(0.0, math.nan)


def test_interval_boundary_semantics():
    interval = Interval(1.0, 2.0)
    assert interval.contains(1.0) and interval.contains(2.0)
    assert not interval.contains(math.nan)
    # touching at a single boundary point counts as intersecting
    assert interval.intersects(Interval(2.0, 3.0))
    assert not interval.intersects(Interval(2.5, 3.0))
    degenerate = Interval(1.5, 1.5)
    assert degenerate.contains(1.5)
    assert degenerate.intersects(interval)


# ---------------------------------------------------------------------------
# Satellite: shared unresolved-signal message text
# ---------------------------------------------------------------------------

def test_derive_signal_set_warning_shares_the_lint_message():
    script = TestScript(
        "toy_script", "interior_light_ecu",
        setup=(SignalAction("BOGUS", MethodCall("put_r", {"r": "1"})),),
    )
    harness = interior_harness()
    captured = []
    derive_signal_set(script, harness, warn=captured.append)
    assert captured == [
        unresolved_signal_message(
            "BOGUS", f"script {script.name!r}", harness.ecu.name)
        + "; dropped from the derived signal set"
    ]


# ---------------------------------------------------------------------------
# Satellite: preflight="lint"
# ---------------------------------------------------------------------------

def test_preflight_lint_blocks_broken_dut(toy_dut):
    toy_dut("toy_preflight", suite_factory=preflight_bad_suite)
    with pytest.raises(LintError) as excinfo:
        preflight_lint("toy_preflight")
    assert any(f.rule == "E-UNKNOWN-VARIABLE" for f in excinfo.value.findings)

    script = Compiler().compile_test(preflight_bad_suite(), "toy_sheet")
    with pytest.raises(LintError):
        run_single(RunSpec(script=script, stand="minimal", preflight="lint"))


def test_preflight_lint_passes_clean_run():
    script = Compiler().compile_test(paper_suite(), PAPER_TEST_NAME)
    result = run_single(
        RunSpec(script=script, stand="minimal", preflight="lint"))
    assert result.passed


def test_unknown_preflight_mode_rejected():
    script = Compiler().compile_test(paper_suite(), PAPER_TEST_NAME)
    with pytest.raises(ConfigurationError):
        RunSpec(script=script, preflight="bogus")


# ---------------------------------------------------------------------------
# CLI: filters, JSON shape, listing integration
# ---------------------------------------------------------------------------

def test_cli_json_format(capsys):
    assert lint_main(["--format", "json"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["exit_code"] == 0
    assert document["counts"] == {"errors": 0, "warnings": 0, "notes": 1}
    assert [f["rule"] for f in document["findings"]] == ["C-DOCUMENTED-ESCAPE"]
    assert set(document["rules"]) == {rule.id for rule in ALL_RULES}


def test_cli_rule_and_ignore_filters(toy_dut, capsys):
    toy_dut("toy_filters", suite_factory=unservable_suite)
    assert lint_main(["--dut", "toy_filters", "--rule", "r-dead-step"]) == 1
    capsys.readouterr()
    assert lint_main(["--dut", "toy_filters",
                      "--ignore", "R-UNSERVABLE-STEP",
                      "--ignore", "R-DEAD-STEP"]) == 0
    capsys.readouterr()
    assert lint_main(["--rule", "NO-SUCH-RULE"]) == 2
    assert "unknown lint rule" in capsys.readouterr().err
    with pytest.raises(TargetError):
        run_lint(rules=["NO-SUCH-RULE"])


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ALL_RULES:
        assert rule.id in out


def test_list_targets_lint_column(capsys):
    assert main_campaign(["--list-targets", "--lint"]) == 0
    out = capsys.readouterr().out
    lint_lines = [line.strip() for line in out.splitlines()
                  if line.strip().startswith("lint:")]
    # one lint line per registered DUT; only the interior light carries
    # the documented escape note, everything else is clean
    assert lint_lines.count("lint: clean") == 5
    assert "lint: 1 note(s)" in lint_lines


# ---------------------------------------------------------------------------
# Family M (multi-ECU compositions)
# ---------------------------------------------------------------------------

def _cluster_toy_fields():
    from repro.paper import cluster_harness, cluster_signal_set, cluster_suite

    return dict(
        ecu_factory=InstrumentClusterEcu,
        harness_factory=cluster_harness,
        signals_factory=cluster_signal_set,
        suite_factory=cluster_suite,
    )


def conflicting_speed_harness(ecu=None):
    """Cluster wiring whose private database redefines VEHICLE_SPEED."""
    base = body_can_database()
    original = base.message("VEHICLE_SPEED")
    redefined = MessageDefinition(
        original.name, original.can_id, original.length + 1,
        original.signals,
    )
    database = CanDatabase(
        tuple(m for m in base if m.key != original.key) + (redefined,)
    )
    return TestHarness(
        ecu if ecu is not None else InstrumentClusterEcu(), database)


def ghost_composed_suite():
    """The real lock+cluster interaction suite plus two ghost signals: an
    electrical pin no member owns and a bus message no member defines."""
    signals = tuple(composed_signal_set()) + (
        Signal("GHOST_WIRE", SignalDirection.INPUT, SignalKind.RESISTIVE,
               pins=("NO_SUCH_PIN",)),
        Signal("GHOST_BUS", SignalDirection.OUTPUT, SignalKind.BUS,
               message="PHANTOM_MSG"),
    )
    base = composed_suite()
    return TestSuite(
        base.dut,
        SignalSet(signals, dut=base.dut, composition=COMPOSITION_NAME),
        base.statuses,
        tuple(base),
    )


def standin_composed_suite():
    """A composed sheet that keeps a stand-synthesised speed input although
    the cluster member produces VEHICLE_SPEED on the shared bus."""
    signals = tuple(composed_signal_set()) + (
        Signal("SPEED_STANDIN", SignalDirection.INPUT, SignalKind.BUS,
               message="VEHICLE_SPEED"),
    )
    base = composed_suite()
    return TestSuite(
        base.dut,
        SignalSet(signals, dut=base.dut, composition=COMPOSITION_NAME),
        base.statuses,
        tuple(base),
    )


def _lock_cluster_members():
    return (("lock", "central_locking_ecu"),
            ("cluster", "instrument_cluster_ecu"))


def test_pin_collision_between_members_is_an_error(toy_dut):
    toy_dut("toy_left")
    toy_dut("toy_right")
    comp = CompositionTarget(
        "toy_twins", (("l", "toy_left"), ("r", "toy_right")),
        suite_factory=paper_suite,
    )
    report = run_lint(duts=["toy_left", "toy_right"], compositions=[comp])
    findings = _findings(report, "M-PIN-COLLISION")
    assert findings
    assert all(f.severity == "error" and f.dut == "toy_twins"
               for f in findings)
    assert report.exit_code == 2


def test_two_member_producers_collide_on_the_bus(toy_dut):
    toy_dut("toy_cluster_a", **_cluster_toy_fields())
    toy_dut("toy_cluster_b", **_cluster_toy_fields())
    comp = CompositionTarget(
        "toy_two_senders",
        (("a", "toy_cluster_a"), ("b", "toy_cluster_b")),
        suite_factory=cluster_suite,
    )
    report = run_lint(duts=[], compositions=[comp])
    findings = _findings(report, "M-BUS-COLLISION")
    assert any("both" in f.message and "transmit" in f.message
               for f in findings)


def test_conflicting_message_definitions_collide(toy_dut):
    fields = _cluster_toy_fields()
    fields["harness_factory"] = conflicting_speed_harness
    toy_dut("toy_redefined", **fields)
    comp = CompositionTarget(
        "toy_conflict",
        (("lock", "central_locking_ecu"), ("cluster", "toy_redefined")),
        suite_factory=composed_suite,
    )
    report = run_lint(duts=[], compositions=[comp])
    findings = _findings(report, "M-BUS-COLLISION")
    assert any("conflicts" in f.message for f in findings)
    assert all(f.severity == "error" for f in findings)


def test_unresolved_composed_signals_are_errors():
    comp = CompositionTarget(
        "toy_ghosts", _lock_cluster_members(),
        suite_factory=ghost_composed_suite,
    )
    report = run_lint(duts=[], compositions=[comp])
    findings = _findings(report, "M-UNRESOLVED-SIGNAL")
    locations = {f.location for f in findings}
    assert "sheet:signals signal:GHOST_WIRE" in locations
    assert "sheet:signals signal:GHOST_BUS" in locations
    assert all(f.severity == "error" for f in findings)


def test_stand_in_for_member_broadcast_warns():
    comp = CompositionTarget(
        "toy_standin", _lock_cluster_members(),
        suite_factory=standin_composed_suite,
    )
    report = run_lint(duts=[], compositions=[comp])
    findings = _findings(report, "M-STIMULATED-MEMBER-TX")
    assert len(findings) == 1
    assert findings[0].severity == "warning"
    assert "cluster" in findings[0].message
    assert "VEHICLE_SPEED" in findings[0].message


def test_family_m_negative_on_bundled_registry():
    report = run_lint(rules=[r.id for r in ALL_RULES if r.id.startswith("M-")])
    assert report.findings == ()


def test_preflight_lint_composition_passes_clean_and_blocks_broken():
    assert preflight_lint_composition("lock+cluster").errors == ()
    broken = CompositionTarget(
        "toy_broken", _lock_cluster_members(),
        suite_factory=ghost_composed_suite,
    )
    with pytest.raises(LintError) as excinfo:
        preflight_lint_composition(broken)
    assert any(f.rule == "M-UNRESOLVED-SIGNAL" for f in excinfo.value.findings)


def test_cli_composition_filter(capsys):
    assert lint_main(["--composition", "lock+cluster",
                      "--rule", "M-PIN-COLLISION", "--rule", "M-BUS-COLLISION",
                      "--rule", "M-UNRESOLVED-SIGNAL",
                      "--rule", "M-STIMULATED-MEMBER-TX"]) == 0
    out = capsys.readouterr().out
    assert "0 error(s), 0 warning(s), 0 note(s)" in out
