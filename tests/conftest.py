"""Shared fixtures: the paper's example objects and ready-made stands."""

from __future__ import annotations

import pytest

from repro.core import Compiler
from repro.paper import (
    build_paper_harness,
    compile_paper_script,
    paper_signal_set,
    paper_status_table,
    paper_suite,
    paper_test_definition,
)
from repro.teststand import (
    TestStandInterpreter,
    build_big_rack,
    build_minimal_bench,
    build_paper_stand,
)


@pytest.fixture
def signals():
    """The paper's signal definition sheet as a SignalSet."""
    return paper_signal_set()


@pytest.fixture
def statuses():
    """The paper's status table."""
    return paper_status_table()


@pytest.fixture
def test_definition():
    """The paper's ten-step test definition sheet."""
    return paper_test_definition()


@pytest.fixture
def suite():
    """The complete paper test suite."""
    return paper_suite()


@pytest.fixture
def script(suite):
    """The compiled, stand-independent script of the paper's test."""
    return Compiler().compile_test(suite, "interior_illumination")


@pytest.fixture
def paper_stand():
    """The paper's test stand (DVM + two resistor decades + CAN)."""
    return build_paper_stand()


@pytest.fixture
def big_rack():
    """The generously equipped crossbar rack."""
    return build_big_rack()


@pytest.fixture
def minimal_bench():
    """The small hard-wired laboratory bench."""
    return build_minimal_bench()


@pytest.fixture
def harness():
    """A fresh interior-light harness (lamp load, CAN database, 12 V)."""
    return build_paper_harness()


@pytest.fixture
def interpreter(paper_stand, harness, signals):
    """An interpreter bound to the paper stand and a fresh harness."""
    return TestStandInterpreter(paper_stand, harness, signals)
