"""Tests for repro.service: the campaign job queue and its WSGI JSON API.

The queue tests drive :class:`CampaignService` directly (real runs and
stub runners); the API tests call the WSGI app in-process with synthetic
environs - no sockets.  The acceptance bar: a campaign submitted over the
API, once done, serves a report whose ``table`` + ``summary`` are
byte-identical to the producing ``repro-campaign`` stdout.
"""

from __future__ import annotations

import io
import json
import time

import pytest

from repro.cli import main_campaign
from repro.service import (
    JOB_STATES,
    CampaignApp,
    CampaignService,
    ServiceError,
)
from repro.service.cli import main_serve
from repro.store import ResultStore
from repro.targets import CampaignSpec


# ---------------------------------------------------------------------------
# WSGI plumbing
# ---------------------------------------------------------------------------

def request(app, method: str, path: str, body: dict | str | None = None):
    """Run one in-process WSGI request; returns (status_code, json_body)."""
    if isinstance(body, dict):
        raw = json.dumps(body).encode("utf-8")
    elif isinstance(body, str):
        raw = body.encode("utf-8")
    else:
        raw = b""
    environ = {
        "REQUEST_METHOD": method,
        "PATH_INFO": path,
        "CONTENT_LENGTH": str(len(raw)),
        "wsgi.input": io.BytesIO(raw),
    }
    captured = {}

    def start_response(status, headers):
        captured["status"] = status
        captured["headers"] = dict(headers)

    chunks = app(environ, start_response)
    payload = b"".join(chunks).decode("utf-8")
    assert captured["headers"]["Content-Type"].startswith("application/json")
    return int(captured["status"].split()[0]), json.loads(payload)


@pytest.fixture
def service():
    with CampaignService(":memory:") as svc:
        yield svc


@pytest.fixture
def app(service):
    return CampaignApp(service)


# ---------------------------------------------------------------------------
# The job queue
# ---------------------------------------------------------------------------

def test_job_states_are_the_documented_lifecycle():
    assert JOB_STATES == ("queued", "running", "done", "failed")


def test_submit_run_record_lifecycle(service):
    job = service.submit(CampaignSpec(dut="wiper_ecu"))
    snapshot = service.wait(job, timeout=60)
    assert snapshot["state"] == "done"
    assert snapshot["error"] == ""
    assert snapshot["run_id"] is not None
    assert snapshot["summary"].startswith("fault campaign:")
    assert snapshot["started_at"] >= snapshot["submitted_at"]
    assert snapshot["finished_at"] >= snapshot["started_at"]
    run = service.store.get_run(snapshot["run_id"])
    assert run.dut == "wiper_ecu"
    assert "fault campaign:" in run.render()


def test_failed_campaign_is_the_jobs_failure_not_the_services(service):
    job = service.submit(CampaignSpec(dut="no_such_dut"))
    snapshot = service.wait(job, timeout=60)
    assert snapshot["state"] == "failed"
    assert snapshot["run_id"] is None
    assert "no_such_dut" in snapshot["error"]
    # the worker survives: the next job still runs
    job2 = service.submit(CampaignSpec(dut="wiper_ecu"))
    assert service.wait(job2, timeout=60)["state"] == "done"


def test_jobs_execute_in_submission_order():
    order = []

    def runner(spec):
        order.append(spec.dut)
        raise RuntimeError("stub")

    with CampaignService(":memory:", runner=runner) as service:
        jobs = [service.submit(CampaignSpec(dut=name))
                for name in ("wiper_ecu", "interior_light_ecu")]
        for job in jobs:
            service.wait(job, timeout=10)
    assert order == ["wiper_ecu", "interior_light_ecu"]
    assert [job for job in jobs] == [1, 2]


def test_wait_timeout_raises():
    def runner(spec):
        time.sleep(5)

    service = CampaignService(":memory:", runner=runner)
    try:
        job = service.submit(CampaignSpec(dut="wiper_ecu"))
        with pytest.raises(ServiceError):
            service.wait(job, timeout=0.05)
        assert service.status(job)["state"] in ("queued", "running")
    finally:
        service.shutdown(wait=False)


def test_unknown_job_and_bad_spec_rejected(service):
    with pytest.raises(ServiceError):
        service.status(999)
    with pytest.raises(ServiceError):
        service.wait(999)
    with pytest.raises(ServiceError):
        service.submit({"dut": "wiper_ecu"})


def test_shutdown_is_idempotent_and_closes_submission():
    service = CampaignService(":memory:")
    service.shutdown()
    service.shutdown()
    with pytest.raises(ServiceError):
        service.submit(CampaignSpec(dut="wiper_ecu"))


def test_service_ignores_store_path_on_the_spec(service, tmp_path):
    """A submitted spec pointing at another store must not open it: the
    service records through its own store only."""
    foreign = tmp_path / "foreign.db"
    job = service.submit(CampaignSpec(dut="wiper_ecu",
                                      store=str(foreign)))
    snapshot = service.wait(job, timeout=60)
    assert snapshot["state"] == "done"
    assert not foreign.exists()
    assert snapshot["run_id"] in service.store.run_ids()


# ---------------------------------------------------------------------------
# The JSON API
# ---------------------------------------------------------------------------

def test_index_and_targets(app):
    status, body = request(app, "GET", "/")
    assert status == 200
    assert body["service"] == "repro campaign service"
    assert "POST /campaigns" in body["endpoints"]
    status, body = request(app, "GET", "/targets")
    assert status == 200
    duts = {entry["name"]: entry for entry in body["duts"]}
    assert "wiper_ecu" in duts
    assert duts["wiper_ecu"]["campaignable"]
    assert {entry["name"] for entry in body["stands"]} >= {"paper"}


def test_api_campaign_round_trip_matches_cli_stdout(app, service, capsys):
    status, body = request(app, "POST", "/campaigns", {"dut": "wiper_ecu"})
    assert status == 202
    assert body["state"] == "queued"
    job = body["job"]
    assert body["location"] == f"/campaigns/{job}"
    snapshot = service.wait(job, timeout=60)
    assert snapshot["state"] == "done"

    status, body = request(app, "GET", f"/campaigns/{job}")
    assert status == 200
    assert body["state"] == "done"
    run_id = body["run_id"]

    status, report = request(app, "GET", f"/runs/{run_id}/report")
    assert status == 200
    assert report["dut"] == "wiper_ecu"
    assert report["report"]["kind"] == "execution-report"

    # byte-identity with the CLI: table + summary ARE the campaign stdout
    assert main_campaign(["--dut", "wiper_ecu"]) == 0
    cli_stdout = capsys.readouterr().out
    assert f"{report['table']}\n{report['summary']}\n" == cli_stdout


def test_api_diff_of_identical_runs_is_empty(app, service):
    jobs = [request(app, "POST", "/campaigns", {"dut": "wiper_ecu"})[1]["job"]
            for _ in range(2)]
    runs = [service.wait(job, timeout=60)["run_id"] for job in jobs]
    status, body = request(app, "GET", f"/runs/{runs[0]}/diff/{runs[1]}")
    assert status == 200
    assert body["empty"] is True
    assert body["changed"] == []
    assert body["only_a"] == [] and body["only_b"] == []


def test_api_jobs_listing(app, service):
    job = request(app, "POST", "/campaigns", {"dut": "wiper_ecu"})[1]["job"]
    service.wait(job, timeout=60)
    status, body = request(app, "GET", "/campaigns")
    assert status == 200
    assert [entry["job"] for entry in body["jobs"]] == [job]
    assert body["jobs"][0]["state"] == "done"


def test_api_error_codes(app):
    # malformed / invalid submissions -> 400 with an explanation
    for body, fragment in [
        (None, "JSON body"),
        ("{not json", "not valid JSON"),
        ("[1, 2]", "JSON object"),
        ({"dut": "wiper_ecu", "store": "x.db"}, "unknown campaign field"),
        ({"stand": "paper_stand"}, "'dut' or a 'workbook'"),
        ({"dut": "wiper_ecu", "jobs": "many"}, "invalid campaign spec"),
    ]:
        status, payload = request(app, "POST", "/campaigns", body)
        assert status == 400, body
        assert fragment in payload["error"]
    # unknown resources -> 404
    assert request(app, "GET", "/campaigns/999")[0] == 404
    assert request(app, "GET", "/campaigns/abc")[0] == 404
    assert request(app, "GET", "/runs/999/report")[0] == 404
    assert request(app, "GET", "/runs/1/diff/2")[0] == 404
    assert request(app, "GET", "/no/such/endpoint")[0] == 404
    # wrong methods -> 405
    assert request(app, "DELETE", "/campaigns")[0] == 405
    assert request(app, "POST", "/targets")[0] == 405


# ---------------------------------------------------------------------------
# repro-serve CLI (error paths only; the listening path is CI's smoke job)
# ---------------------------------------------------------------------------

def test_serve_rejects_unopenable_store(tmp_path, capsys):
    target = tmp_path / "not-a-directory" / "results.db"
    assert main_serve(["--store", str(target)]) == 2
    assert "cannot open store" in capsys.readouterr().err


def test_serve_rejects_busy_port(capsys):
    import socket

    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        assert main_serve(["--store", ":memory:",
                           "--host", "127.0.0.1",
                           "--port", str(port)]) == 2
    assert "cannot listen" in capsys.readouterr().err
