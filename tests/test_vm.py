"""Tests for the script bytecode VM (PR 8).

Covers the guarantees the VM fast path rests on:

* property-style parity: every bundled DUT's full suite renders a
  byte-identical report with the VM on or off (wall time excluded), and
  campaign verdict tables agree on all four executor backends,
* the peephole passes (guard fusing, wait merging, I/O batching) reduce
  the op count without any verdict drift,
* self-distrust: a binding or prologue mismatch degrades the run to the
  classic interpreter before anything executes, and the plan-cache stats
  record the split (full-VM vs alloc-only vs degraded),
* prepared-operand safety: instruments without the ``prepared`` keyword
  never receive it.
"""

from __future__ import annotations

import json

import pytest

from repro.core import Compiler
from repro.core.script import MethodCall, ScriptStep, SignalAction, TestScript
from repro.core.signals import Signal, SignalDirection, SignalKind, SignalSet
from repro.dut import InteriorLightEcu
from repro.instruments import Dvm
from repro.instruments.base import Instrument
from repro.paper import interior_harness, paper_signal_set, paper_suite
from repro.targets import get_dut, iter_duts
from repro.teststand import (
    Allocator,
    PlanCache,
    TestStandInterpreter,
    VmCursor,
    build_paper_stand,
    compile_plan,
    text_report,
)
from repro.teststand import json_report
from repro.teststand import vm
from repro.teststand.vm import (
    VmIoItem,
    VmOp,
    batch_io,
    fuse_guards,
    merge_waits,
)


SUITE_DUTS = tuple(d.name for d in iter_duts() if d.suite_factory is not None)


def _strip_wall(report: str) -> str:
    return "\n".join(
        line for line in report.splitlines() if "Wall time" not in line
    )


def _run_suite(dut, *, use_vm: bool, cache: PlanCache):
    """Run the DUT's full bundled suite serially on its default stand."""
    from repro.targets import default_stand_for, stand_factory_for

    scripts = Compiler().compile_suite(dut.suite_factory())
    stand = stand_factory_for(default_stand_for(dut), dut)()
    interpreter = TestStandInterpreter(
        stand, dut.build_harness(), dut.signals_factory(),
        plan_cache=cache, use_vm=use_vm,
    )
    return [interpreter.run(script) for script in scripts]


# ---------------------------------------------------------------------------
# Parity: byte-identical reports, VM on vs off
# ---------------------------------------------------------------------------

class TestVmParity:
    @pytest.mark.parametrize("dut_name", SUITE_DUTS)
    def test_full_suite_reports_identical(self, dut_name):
        """Property over every bundled DUT: rendered reports match."""
        dut = get_dut(dut_name)
        cache_on, cache_off = PlanCache(), PlanCache()
        with_vm = _run_suite(dut, use_vm=True, cache=cache_on)
        # Warm pass so the VM path actually executes (first runs compile).
        with_vm = _run_suite(dut, use_vm=True, cache=cache_on)
        without = _run_suite(dut, use_vm=False, cache=cache_off)
        for a, b in zip(with_vm, without):
            assert _strip_wall(text_report(a)) == _strip_wall(text_report(b))
            ja, jb = json.loads(json_report(a)), json.loads(json_report(b))
            ja.pop("wall_time_s", None), jb.pop("wall_time_s", None)
            assert ja == jb
        # Guard against silently comparing classic with classic: the warm
        # pass must have been served by the VM.
        assert cache_on.stats.snapshot()["vm_runs"] >= len(with_vm)

    # VM-on/off byte-identity across all backends lives in
    # ``test_parity_matrix.py``.


# ---------------------------------------------------------------------------
# Peephole passes
# ---------------------------------------------------------------------------

def _io_op(code: str, resource: str, signal_name: str, method: str) -> VmOp:
    signal = Signal(signal_name, SignalDirection.INPUT, SignalKind.ANALOG,
                    pins=(signal_name,))
    action = SignalAction(signal_name, MethodCall(method, {"u": "1"}))
    item = VmIoItem(action, signal, _StubAllocation())
    return VmOp(code, resource_key=resource, items=(item,))


class _StubAllocation:
    pins = ("a",)
    routes = ()
    persistent = False
    resource = "stub"


class TestPeephole:
    def test_merge_waits_sums_and_keeps_emits(self):
        emit = SignalAction("x", MethodCall("wait", {"t": "1"}))
        ops = [
            VmOp("WAIT", duration=1.0, emits=(emit,)),
            VmOp("WAIT", duration=2.0, emits=(emit,)),
            VmOp("END_STEP", number=0),
            VmOp("WAIT", duration=0.5),
        ]
        merged = merge_waits(ops)
        assert [op.code for op in merged] == ["WAIT", "END_STEP", "WAIT"]
        assert merged[0].duration == pytest.approx(3.0)
        assert merged[0].emits == (emit, emit)
        # END_STEP is a barrier: the trailing settle stays separate.
        assert merged[2].duration == pytest.approx(0.5)

    def test_batch_io_merges_same_resource_only(self):
        ops = [
            _io_op("SET", "r1", "A", "put_u"),
            _io_op("SET", "r1", "B", "put_u"),
            _io_op("SET", "r2", "C", "put_u"),
        ]
        batched = batch_io(ops)
        assert len(batched) == 2
        assert [i.signal.key for i in batched[0].items] == ["a", "b"]
        assert batched[1].resource_key == "r2"

    def test_fuse_guards_folds_window_into_io(self):
        io = _io_op("GET", "r1", "A", "get_u")
        window = ("capability", 1.0, None)
        fused = fuse_guards([
            VmOp("CHECK_WINDOW", window=window),
            io,
            VmOp("EVAL_LIMIT", window=window),
            _io_op("GET", "r1", "B", "get_u"),
        ])
        assert [op.code for op in fused] == ["GET", "GET"]
        assert fused[0].items[0].window == window
        assert fused[0].items[0].dynamic is False
        assert fused[1].items[0].dynamic is True

    def test_guard_without_io_stays_standalone(self):
        guard = VmOp("CHECK_WINDOW", window=("cap", 1.0, None))
        out = fuse_guards([guard, VmOp("WAIT", duration=1.0)])
        assert [op.code for op in out] == ["CHECK_WINDOW", "WAIT"]

    def test_compiled_paper_program_is_smaller_than_raw(self):
        """The bundled paper script must actually profit from the peephole."""
        plan = _paper_plan()
        assert plan.program is not None, plan.vm_reason
        assert plan.program.raw_op_count > len(plan.program.ops)

    def test_wait_merging_does_not_drift_verdicts(self):
        """Two adjacent waits: merged by the VM, walked classically - the
        reports (durations, per-action results) must still match."""
        step = ScriptStep(0, 0.5, (
            SignalAction("NIGHT", MethodCall("wait", {"t": "1"})),
            SignalAction("NIGHT", MethodCall("wait", {"t": "2"})),
        ))
        script = TestScript("waits", "interior_light_ecu", [step])
        reports = {}
        for use_vm in (True, False):
            cache = PlanCache()
            interpreter = TestStandInterpreter(
                build_paper_stand(), interior_harness(InteriorLightEcu()),
                paper_signal_set(), plan_cache=cache, use_vm=use_vm,
            )
            interpreter.run(script)  # warm: first run compiles
            result = TestStandInterpreter(
                build_paper_stand(), interior_harness(InteriorLightEcu()),
                paper_signal_set(), plan_cache=cache, use_vm=use_vm,
            ).run(script)
            reports[use_vm] = _strip_wall(text_report(result))
            if use_vm:
                assert cache.stats.snapshot()["vm_runs"] >= 1
        assert reports[True] == reports[False]


# ---------------------------------------------------------------------------
# Self-distrust: degrade before executing anything
# ---------------------------------------------------------------------------

def _paper_script() -> TestScript:
    return Compiler().compile_test(paper_suite(), "interior_illumination")


def _paper_plan():
    stand = build_paper_stand()
    return compile_plan(
        _paper_script(), paper_signal_set(), stand,
        policy="first_fit", registry=stand.registry,
        variables={"ubatt": stand.supply_voltage, "t": 0.0},
    )


def _cursor(program, stand, signals) -> VmCursor:
    return VmCursor(
        program, stand, signals=signals,
        allocator=Allocator(stand.resources, stand.connections,
                            policy="first_fit", registry=stand.registry),
        harness=interior_harness(InteriorLightEcu()),
    )


class TestVmDegrade:
    def test_repinned_signal_fails_validation(self):
        plan = _paper_plan()
        stand = build_paper_stand()
        repinned = SignalSet(
            tuple(
                Signal("INT_ILL", s.direction, s.kind,
                       pins=("INT_ILL_R", "INT_ILL_F"),
                       initial_status=s.initial_status)
                if s.key == "int_ill" else s
                for s in paper_signal_set()
            ),
            dut="interior_light_ecu",
        )
        variables = {"ubatt": stand.supply_voltage, "t": 0.0}
        assert _cursor(plan.program, stand, paper_signal_set()) \
            .validate(variables)
        assert not _cursor(plan.program, stand, repinned).validate(variables)

    def test_unresolvable_resource_fails_binding(self):
        program = vm.VmProgram(
            (VmOp("SET", resource_key="no_such_resource",
                  items=(_io_op("SET", "no_such_resource", "A",
                                "put_u").items[0],)),),
            0, key=("toy",),
        )
        stand = build_paper_stand()
        cursor = _cursor(program, stand, paper_signal_set())
        assert cursor.binding is None
        assert not cursor.validate({"ubatt": 12.0, "t": 0.0})

    def test_stats_split_vm_vs_alloc_only(self):
        script = _paper_script()
        for use_vm, key in ((True, "vm_runs"), (False, "alloc_only_runs")):
            cache = PlanCache()
            for _ in range(2):
                TestStandInterpreter(
                    build_paper_stand(), interior_harness(InteriorLightEcu()),
                    paper_signal_set(), plan_cache=cache, use_vm=use_vm,
                ).run(script)
            stats = cache.stats.snapshot()
            assert stats[key] >= 1, stats
            assert stats["vm_degraded"] == 0, stats


# ---------------------------------------------------------------------------
# Prepared operands: signature probe keeps legacy instruments safe
# ---------------------------------------------------------------------------

class _LegacyDvm(Dvm):
    """A third-party style subclass without the ``prepared`` keyword."""

    def _perform(self, call, signal, pins, harness, variables):  # noqa: D102
        return super()._perform(call, signal, pins, harness, variables)


class TestPreparedProbe:
    def test_bundled_instrument_accepts_prepared(self):
        assert vm._accepts_prepared(Dvm) is True

    def test_legacy_subclass_is_never_handed_prepared(self):
        assert vm._accepts_prepared(_LegacyDvm) is False

    def test_probe_is_memoised_per_class(self):
        vm._accepts_prepared(_LegacyDvm)
        assert vm._PREPARED_PROBE[_LegacyDvm] is False
