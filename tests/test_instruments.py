"""Tests for the virtual instruments (executed directly against a harness)."""

from __future__ import annotations

import math

import pytest

from repro.core.errors import CapabilityError, InstrumentError
from repro.core.script import MethodCall
from repro.core.signals import Signal, SignalDirection, SignalKind
from repro.instruments import (
    Capability,
    CanInterface,
    CurrentProbe,
    DigitalIo,
    Dvm,
    OhmMeter,
    PowerSupply,
    ResistorDecade,
    SignalGenerator,
)

INT_ILL = Signal("INT_ILL", SignalDirection.OUTPUT, SignalKind.ANALOG,
                 pins=("INT_ILL_F", "INT_ILL_R"))
DS_FL = Signal("DS_FL", SignalDirection.INPUT, SignalKind.RESISTIVE, pins=("DS_FL",))
NIGHT = Signal("NIGHT", SignalDirection.INPUT, SignalKind.BUS, message="LIGHT_SENSOR")
IGN = Signal("IGN_ST", SignalDirection.INPUT, SignalKind.BUS, message="IGN_STATUS")


class TestCapability:
    def test_can_serve_nominal(self):
        cap = Capability("put_r", "r", 0, 1e6, "Ohm")
        assert cap.can_serve(500.0)
        assert not cap.can_serve(2e6)

    def test_can_serve_acceptance_window(self):
        cap = Capability("put_r", "r", 0, 1e6, "Ohm")
        from repro.core.values import Interval
        assert cap.can_serve(math.inf, Interval(5000, math.inf))
        assert not cap.can_serve(math.inf, Interval(2e6, math.inf))

    def test_invalid_range_rejected(self):
        with pytest.raises(InstrumentError):
            Capability("get_u", "u", 10, -10)

    def test_as_row(self):
        row = Capability("get_u", "u", -60, 60, "V").as_row()
        assert row == ("get_u", "u", "-60", "60", "V")


class TestDvm:
    def test_measures_lamp_voltage(self, harness):
        harness.send_can_signal("NIGHT", 1)
        harness.apply_resistance("DS_FL", 0.5)
        dvm = Dvm("dvm")
        call = MethodCall("get_u", {"u_min": "(0.7*ubatt)", "u_max": "(1.1*ubatt)"})
        outcome = dvm.execute(call, INT_ILL, ("INT_ILL_F", "INT_ILL_R"), harness, {"ubatt": 12})
        assert outcome.passed and outcome.unit == "V"
        assert 8.4 <= outcome.observed <= 13.2

    def test_fails_outside_limits(self, harness):
        dvm = Dvm("dvm")
        call = MethodCall("get_u", {"u_min": "(0.7*ubatt)", "u_max": "(1.1*ubatt)"})
        outcome = dvm.execute(call, INT_ILL, ("INT_ILL_F", "INT_ILL_R"), harness, {"ubatt": 12})
        assert not outcome.passed

    def test_rejects_wrong_method_and_missing_pins(self, harness):
        dvm = Dvm("dvm")
        with pytest.raises(InstrumentError):
            dvm.execute(MethodCall("put_r", {"r": "1"}), DS_FL, ("DS_FL",), harness, {})
        with pytest.raises(InstrumentError):
            dvm.execute(MethodCall("get_u", {"u_min": "0", "u_max": "1"}), INT_ILL, (), harness, {})

    def test_capability(self):
        assert Dvm("d").supports("get_u") and not Dvm("d").supports("put_r")
        with pytest.raises(CapabilityError):
            Dvm("d").capability_for("put_r")


class TestResistorDecade:
    def test_applies_requested_value(self, harness):
        decade = ResistorDecade("dec", max_ohms=1e6)
        call = MethodCall("put_r", {"r": "0.5", "r_min": "0", "r_max": "2"})
        outcome = decade.execute(call, DS_FL, ("DS_FL",), harness, {})
        assert outcome.passed
        assert harness.applied_resistance("DS_FL") == pytest.approx(0.5)

    def test_inf_clamped_to_max_and_checked(self, harness):
        decade = ResistorDecade("dec", max_ohms=2e5)
        call = MethodCall("put_r", {"r": "INF", "r_min": "5000", "r_max": "INF"})
        outcome = decade.execute(call, DS_FL, ("DS_FL",), harness, {})
        assert outcome.passed
        assert harness.applied_resistance("DS_FL") == pytest.approx(2e5)

    def test_inf_fails_small_decade(self, harness):
        decade = ResistorDecade("dec", max_ohms=1000.0)
        call = MethodCall("put_r", {"r": "INF", "r_min": "5000", "r_max": "INF"})
        outcome = decade.execute(call, DS_FL, ("DS_FL",), harness, {})
        assert not outcome.passed

    def test_quantisation(self, harness):
        decade = ResistorDecade("dec", max_ohms=100.0, resolution=1.0)
        call = MethodCall("put_r", {"r": "47.4"})
        outcome = decade.execute(call, DS_FL, ("DS_FL",), harness, {})
        assert outcome.observed == pytest.approx(47.0)

    def test_missing_parameter_raises(self, harness):
        with pytest.raises(InstrumentError):
            ResistorDecade("dec").execute(MethodCall("put_r", {}), DS_FL, ("DS_FL",), harness, {})


class TestSupplyAndGenerator:
    def test_power_supply_applies_voltage(self, harness):
        psu = PowerSupply("psu", u_max=30.0)
        outcome = psu.execute(MethodCall("put_u", {"u": "5"}), DS_FL, ("DS_FL",), harness, {})
        assert outcome.passed and outcome.observed == 5.0

    def test_power_supply_clamps(self, harness):
        psu = PowerSupply("psu", u_max=10.0)
        outcome = psu.execute(MethodCall("put_u", {"u": "20"}), DS_FL, ("DS_FL",), harness, {})
        assert outcome.observed == 10.0

    def test_generator_digital_levels(self, harness):
        gen = SignalGenerator("gen")
        outcome = gen.execute(MethodCall("put_digital", {"level": "1"}), DS_FL, ("DS_FL",),
                              harness, {"ubatt": 12})
        assert outcome.passed and outcome.observed == 1.0


class TestMetersAndDigitalIo:
    def test_current_probe(self, harness):
        harness.send_can_signal("NIGHT", 1)
        harness.apply_resistance("DS_FL", 0.5)
        probe = CurrentProbe("probe")
        call = MethodCall("get_i", {"i_min": "1", "i_max": "3"})
        outcome = probe.execute(call, INT_ILL, ("INT_ILL_F",), harness, {})
        assert outcome.passed

    def test_current_probe_accuracy_is_fraction_of_reading(self, harness):
        # The clamp probe's accuracy widens the limits by accuracy*reading
        # amperes, not by the raw fraction: with the lamp drawing ~1.9 A, a
        # window starting 5 % above the reading must fail at the default
        # 1 % of reading but pass at 10 % of reading.
        harness.send_can_signal("NIGHT", 1)
        harness.apply_resistance("DS_FL", 0.5)
        reading = harness.measure_current("INT_ILL_F")
        assert reading > 1.0
        call = MethodCall("get_i", {"i_min": str(reading * 1.05),
                                    "i_max": str(reading * 2.0)})
        strict = CurrentProbe("strict", accuracy=0.01)
        loose = CurrentProbe("loose", accuracy=0.10)
        assert not strict.execute(call, INT_ILL, ("INT_ILL_F",), harness, {}).passed
        assert loose.execute(call, INT_ILL, ("INT_ILL_F",), harness, {}).passed

    def test_current_probe_rejects_non_fractional_accuracy(self):
        from repro.core.errors import InstrumentError

        with pytest.raises(InstrumentError, match="fraction"):
            CurrentProbe("probe", accuracy=1.5)
        with pytest.raises(InstrumentError, match="fraction"):
            CurrentProbe("probe", accuracy=-0.1)

    def test_ohmmeter(self, harness):
        harness.apply_resistance("DS_FL", 470.0)
        meter = OhmMeter("ohm")
        call = MethodCall("get_r", {"r_min": "400", "r_max": "500"})
        outcome = meter.execute(call, DS_FL, ("DS_FL",), harness, {})
        assert outcome.passed

    def test_digital_io_roundtrip(self, harness):
        dio = DigitalIo("dio")
        dio.execute(MethodCall("put_digital", {"level": "1"}), DS_FL, ("DS_FL",),
                    harness, {"ubatt": 12})
        outcome = dio.execute(MethodCall("get_digital", {"level_min": "1", "level_max": "1"}),
                              DS_FL, ("DS_FL",), harness, {"ubatt": 12})
        assert outcome.passed


class TestCanInterface:
    def test_put_can_sends_payload(self, harness):
        can = CanInterface("can")
        outcome = can.execute(MethodCall("put_can", {"data": "1B"}), NIGHT, (), harness, {})
        assert outcome.passed
        assert harness.ecu.night

    def test_put_can_needs_message(self, harness):
        can = CanInterface("can")
        with pytest.raises(InstrumentError):
            can.execute(MethodCall("put_can", {"data": "1B"}), DS_FL, (), harness, {})

    def test_put_can_needs_data(self, harness):
        can = CanInterface("can")
        with pytest.raises(InstrumentError):
            can.execute(MethodCall("put_can", {}), NIGHT, (), harness, {})

    def test_get_can_exact_payload(self):
        from repro.dut import CentralLockingEcu, LoadSpec, TestHarness, body_can_database

        harness = TestHarness(CentralLockingEcu(), body_can_database(),
                              loads=(LoadSpec("LOCK_LED", ohms=500.0),))
        can = CanInterface("can")
        locked = Signal("LOCKED", SignalDirection.OUTPUT, SignalKind.BUS, message="LOCK_STATUS")
        harness.send_can_payload("LOCK_COMMAND", 1)
        outcome = can.execute(MethodCall("get_can", {"data": "1B"}), locked, (), harness, {})
        assert outcome.passed
        outcome = can.execute(MethodCall("get_can", {"data": "0B"}), locked, (), harness, {})
        assert not outcome.passed

    def test_is_bus_interface_flag(self):
        assert CanInterface("can").is_bus_interface
        assert not Dvm("dvm").is_bus_interface
