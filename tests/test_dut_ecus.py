"""Behavioural tests of the ECU models (driven directly, without a test stand)."""

from __future__ import annotations

import math

import pytest

from repro.dut import (
    CentralLockingEcu,
    ExteriorLightEcu,
    InteriorLightEcu,
    WindowLifterEcu,
    WiperEcu,
)
from repro.dut.pins import OutputDrive, PinKind


def _night(ecu, active=True):
    ecu.receive_message("LIGHT_SENSOR", {"NIGHT": 1.0 if active else 0.0})


def _ignition(ecu, level=2):
    ecu.receive_message("IGN_STATUS", {"IGN_ST": float(level)})


class TestInteriorLightEcu:
    def test_off_by_default(self):
        ecu = InteriorLightEcu()
        assert not ecu.illumination_on
        assert not ecu.output_drive("INT_ILL_F").driven

    def test_door_open_by_day_stays_off(self):
        ecu = InteriorLightEcu()
        _night(ecu, False)
        ecu.set_pin_resistance("DS_FL", 0.5)
        assert not ecu.illumination_on

    def test_door_open_at_night_switches_on(self):
        ecu = InteriorLightEcu()
        _night(ecu, True)
        ecu.set_pin_resistance("DS_FL", 0.5)
        assert ecu.illumination_on
        assert ecu.output_drive("INT_ILL_F").driven
        assert ecu.output_drive("INT_ILL_F").level == 1.0

    def test_any_door_triggers(self):
        for pin in ("DS_FL", "DS_FR", "DS_RL", "DS_RR"):
            ecu = InteriorLightEcu()
            _night(ecu)
            ecu.set_pin_resistance(pin, 1.0)
            assert ecu.illumination_on, pin

    def test_high_resistance_means_door_closed(self):
        ecu = InteriorLightEcu()
        _night(ecu)
        ecu.set_pin_resistance("DS_FL", 5000.0)
        assert not ecu.illumination_on

    def test_timeout_after_300s(self):
        ecu = InteriorLightEcu()
        _night(ecu)
        ecu.set_pin_resistance("DS_FL", 0.5)
        ecu.advance_to(299.0)
        assert ecu.illumination_on
        ecu.advance_to(301.0)
        assert not ecu.illumination_on

    def test_closing_door_rearms_timer(self):
        ecu = InteriorLightEcu()
        _night(ecu)
        ecu.set_pin_resistance("DS_FL", 0.5)
        ecu.advance_to(250.0)
        ecu.set_pin_resistance("DS_FL", math.inf)   # door closed
        assert not ecu.illumination_on
        ecu.advance_to(251.0)
        ecu.set_pin_resistance("DS_FL", 0.5)        # door re-opened
        ecu.advance_to(500.0)                        # 249 s later: still on
        assert ecu.illumination_on
        ecu.advance_to(560.0)                        # > 300 s after re-opening
        assert not ecu.illumination_on

    def test_reset_clears_state(self):
        ecu = InteriorLightEcu()
        _night(ecu)
        ecu.set_pin_resistance("DS_FL", 0.5)
        assert ecu.illumination_on
        ecu.reset()
        assert not ecu.illumination_on

    def test_power_off_floats_outputs(self):
        ecu = InteriorLightEcu()
        _night(ecu)
        ecu.set_pin_resistance("DS_FL", 0.5)
        ecu.set_power(False)
        assert not ecu.output_drive("INT_ILL_F").driven

    def test_unknown_message_ignored(self):
        ecu = InteriorLightEcu()
        ecu.receive_message("SOME_OTHER", {"X": 1})
        assert not ecu.illumination_on

    def test_pin_metadata(self):
        ecu = InteriorLightEcu()
        assert ecu.pin("DS_FL").kind is PinKind.RESISTIVE_INPUT
        assert ecu.pin("INT_ILL_F").is_output
        assert ecu.has_pin("int_ill_r")
        assert not ecu.has_pin("nonexistent")


class TestCentralLockingEcu:
    def test_lock_unlock_by_can(self):
        ecu = CentralLockingEcu()
        assert not ecu.locked
        ecu.receive_message("LOCK_COMMAND", {"LOCK_REQ": 1})
        assert ecu.locked
        assert ecu.output_drive("LOCK_LED").driven
        ecu.receive_message("LOCK_COMMAND", {"LOCK_REQ": 2})
        assert not ecu.locked

    def test_lock_status_transmitted(self):
        ecu = CentralLockingEcu()
        ecu.receive_message("LOCK_COMMAND", {"LOCK_REQ": 1})
        transmissions = ecu.pending_transmissions()
        assert ("lock_status", {"locked": 1.0}) in transmissions

    def test_auto_lock_above_threshold(self):
        ecu = CentralLockingEcu()
        _ignition(ecu)
        ecu.receive_message("VEHICLE_SPEED", {"SPEED": 20.0})
        assert ecu.locked

    def test_auto_lock_only_once_per_cycle(self):
        ecu = CentralLockingEcu()
        _ignition(ecu)
        ecu.receive_message("VEHICLE_SPEED", {"SPEED": 20.0})
        ecu.receive_message("LOCK_COMMAND", {"LOCK_REQ": 2})  # unlock manually
        ecu.receive_message("VEHICLE_SPEED", {"SPEED": 30.0})
        assert not ecu.locked  # no second auto lock in the same cycle

    def test_unlock_inhibited_at_speed(self):
        ecu = CentralLockingEcu()
        _ignition(ecu)
        ecu.receive_message("VEHICLE_SPEED", {"SPEED": 20.0})
        assert ecu.locked
        ecu.receive_message("VEHICLE_SPEED", {"SPEED": 150.0})
        ecu.receive_message("LOCK_COMMAND", {"LOCK_REQ": 2})
        assert ecu.locked  # unlock refused above 120 km/h

    def test_key_switch_edges(self):
        ecu = CentralLockingEcu()
        ecu.set_pin_resistance("KEY_SW", 1.0)
        assert ecu.locked
        ecu.set_pin_resistance("KEY_SW", math.inf)
        assert ecu.locked  # releasing the key does not unlock
        ecu.set_pin_resistance("UNLOCK_SW", 1.0)
        assert not ecu.locked

    def test_actuator_pulse_ends(self):
        ecu = CentralLockingEcu()
        ecu.receive_message("LOCK_COMMAND", {"LOCK_REQ": 1})
        assert ecu.output_drive("LOCK_ACT").driven
        ecu.advance_to(1.0)
        assert not ecu.output_drive("LOCK_ACT").driven


class TestWindowLifterEcu:
    def test_requires_ignition(self):
        ecu = WindowLifterEcu()
        ecu.set_pin_resistance("WIN_SW_DOWN", 1.0)
        assert not ecu.moving

    def test_opens_and_stops_at_end(self):
        ecu = WindowLifterEcu()
        _ignition(ecu)
        ecu.set_pin_resistance("WIN_SW_DOWN", 1.0)
        assert ecu.moving
        ecu.advance_to(5.0)
        assert ecu.position == pytest.approx(50.0, abs=1.0)
        ecu.advance_to(60.0)
        assert ecu.position == 100.0
        assert not ecu.moving

    def test_both_switches_is_no_request(self):
        ecu = WindowLifterEcu()
        _ignition(ecu)
        ecu.set_pin_resistance("WIN_SW_DOWN", 1.0)
        ecu.set_pin_resistance("WIN_SW_UP", 1.0)
        assert not ecu.moving

    def test_position_reported_on_can(self):
        ecu = WindowLifterEcu()
        _ignition(ecu)
        ecu.set_pin_resistance("WIN_SW_DOWN", 1.0)
        ecu.advance_to(2.0)
        ecu.set_pin_resistance("WIN_SW_DOWN", math.inf)
        messages = dict(ecu.pending_transmissions())
        assert "window_position" in messages

    def test_up_from_open(self):
        ecu = WindowLifterEcu()
        _ignition(ecu)
        ecu.set_pin_resistance("WIN_SW_DOWN", 1.0)
        ecu.advance_to(4.0)
        ecu.set_pin_resistance("WIN_SW_DOWN", math.inf)
        ecu.set_pin_resistance("WIN_SW_UP", 1.0)
        assert ecu.output_drive("WIN_MOTOR_UP").driven
        ecu.advance_to(100.0)
        assert ecu.position == 0.0


class TestWiperEcu:
    def test_continuous_modes(self):
        ecu = WiperEcu()
        _ignition(ecu)
        ecu.receive_message("WIPER_COMMAND", {"WIPER_MODE": 2})
        assert ecu.motor_running
        assert not ecu.output_drive("WIPER_FAST").driven
        ecu.receive_message("WIPER_COMMAND", {"WIPER_MODE": 3})
        assert ecu.output_drive("WIPER_FAST").driven

    def test_off_without_ignition(self):
        ecu = WiperEcu()
        ecu.receive_message("WIPER_COMMAND", {"WIPER_MODE": 2})
        assert not ecu.motor_running

    def test_interval_pulses(self):
        ecu = WiperEcu()
        _ignition(ecu)
        ecu.receive_message("WIPER_COMMAND", {"WIPER_MODE": 1})
        assert ecu.motor_running            # first wipe starts immediately
        ecu.advance_to(2.0)
        assert not ecu.motor_running        # wipe over, pausing
        ecu.advance_to(6.5)
        assert ecu.motor_running            # next interval wipe

    def test_wash_runs_pump_and_after_wipes(self):
        ecu = WiperEcu()
        _ignition(ecu)
        ecu.receive_message("WIPER_COMMAND", {"WASH": 1})
        assert ecu.output_drive("WASH_PUMP").driven
        assert ecu.motor_running is False or True  # pump independent of motor state
        ecu.receive_message("WIPER_COMMAND", {"WASH": 0})
        assert ecu.motor_running            # follow-up wipes
        ecu.advance_to(20.0)
        assert not ecu.motor_running


class TestExteriorLightEcu:
    def test_switch_on_needs_ignition(self):
        ecu = ExteriorLightEcu()
        ecu.receive_message("LIGHT_SWITCH", {"LIGHT_SW": 2})
        assert not ecu.low_beam_on
        _ignition(ecu)
        assert ecu.low_beam_on

    def test_auto_mode_follows_night(self):
        ecu = ExteriorLightEcu()
        _ignition(ecu)
        ecu.receive_message("LIGHT_SWITCH", {"LIGHT_SW": 1})
        assert not ecu.low_beam_on
        _night(ecu)
        assert ecu.low_beam_on

    def test_drl_complements_low_beam(self):
        ecu = ExteriorLightEcu()
        _ignition(ecu)
        assert ecu.drl_on
        ecu.receive_message("LIGHT_SWITCH", {"LIGHT_SW": 2})
        assert not ecu.drl_on and ecu.low_beam_on

    def test_parking_light_without_ignition(self):
        ecu = ExteriorLightEcu()
        ecu.set_pin_resistance("PARK_SW", 1.0)
        assert ecu.output_drive("POSITION_LIGHT").driven
