"""Tests for the chaos harness and the executor's resilience machinery.

Covers the error taxonomy and retry classification, deterministic backoff,
per-job deadlines (sync and async), stand quarantine, seeded fault
schedules, process-worker death recovery, store hardening (WAL, bounded
write retry, checkpoints) and campaign checkpoint/resume.  The
cross-backend byte-identity of chaotic campaigns lives in
``test_parity_matrix.py``; this module keeps the feature-level behaviour.

The process-backend tests rely on module-level factories (anything a job
carries must be picklable to cross a process boundary).
"""

from __future__ import annotations

import asyncio
import sqlite3
import threading
import time

import pytest

from repro import chaos
from repro.core import Compiler
from repro.core.errors import (
    ConfigurationError,
    InstrumentIOError,
    JobTimeoutError,
    TransientError,
    is_transient,
)
from repro.dut import InteriorLightEcu
from repro.methods.base import MethodOutcome
from repro.paper import interior_harness, paper_signal_set, paper_suite
from repro.store import ResultStore
from repro.targets import CampaignSpec, CapabilityGapError, run_campaign
from repro.teststand import (
    ResiliencePolicy,
    SerialExecutor,
    Verdict,
    build_paper_stand,
    expand_jobs,
    make_executor,
    run_jobs,
)
from repro.teststand.executor import _backoff_seconds


def paper_scripts():
    return Compiler().compile_suite(paper_suite())


# -- module-level factories (picklable; see module docstring) ---------------

def config_error_ecu():
    raise ConfigurationError("bench miswired: supply on the wrong rail")


def capability_gap_ecu():
    raise CapabilityGapError("paper", ("get_i",), dut="interior_light_ecu")


def flaky_io_ecu():
    raise InstrumentIOError("bus dropped the frame")


def slow_ecu():
    time.sleep(0.5)
    return InteriorLightEcu()


def _jobs(ecu_factory, groups=1):
    names = {f"g{i}": ecu_factory for i in range(groups)} \
        if groups > 1 else {"": ecu_factory}
    return expand_jobs(
        paper_scripts(), paper_signal_set(), {"": build_paper_stand},
        interior_harness, names,
    )


FAST = ResiliencePolicy(backoff_base=0.0, jitter=0.0)


# ---------------------------------------------------------------------------
# Error taxonomy and retry classification
# ---------------------------------------------------------------------------

class TestClassification:
    def test_taxonomy(self):
        assert is_transient(TransientError("x"))
        assert is_transient(InstrumentIOError("x"))
        # Unknown exception types must stay transient: a conservative
        # classifier that failed unknown errors fast would regress the
        # executor's long-standing retry-on-RuntimeError contract.
        assert is_transient(RuntimeError("x"))
        assert not is_transient(ConfigurationError("x"))
        assert not is_transient(CapabilityGapError("paper", ("get_i",)))
        assert not is_transient(JobTimeoutError("x", deadline=1.0))

    @pytest.mark.parametrize(
        "factory,name",
        ((config_error_ecu, "ConfigurationError"),
         (capability_gap_ecu, "CapabilityGapError")),
        ids=("configuration", "capability_gap"))
    def test_permanent_errors_fail_fast(self, factory, name):
        """Regression: permanent errors must not burn the retry budget."""
        report = run_jobs(_jobs(factory), SerialExecutor(),
                          resilience=ResiliencePolicy(
                              max_attempts=4, backoff_base=0.0))
        job_result = report.results[0]
        assert job_result.attempts == 1
        assert job_result.result is None
        assert name in job_result.error
        assert job_result.verdict is Verdict.ERROR

    def test_retry_exhaustion_reports_last_error(self):
        report = run_jobs(_jobs(flaky_io_ecu), SerialExecutor(),
                          resilience=ResiliencePolicy(
                              max_attempts=3, backoff_base=0.0))
        job_result = report.results[0]
        assert job_result.attempts == 3
        assert job_result.result is None
        assert "InstrumentIOError" in job_result.error
        assert "bus dropped the frame" in job_result.error
        assert job_result.verdict is Verdict.ERROR

    def test_policy_validation(self):
        with pytest.raises(ConfigurationError):
            ResiliencePolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            ResiliencePolicy(deadline=0.0)
        with pytest.raises(ConfigurationError):
            ResiliencePolicy(quarantine_after=-1)


class TestBackoff:
    def test_deterministic_and_bounded(self):
        policy = ResiliencePolicy(backoff_base=0.1, backoff_factor=2.0,
                                  backoff_max=1.0, jitter=0.25, seed=7)
        first = _backoff_seconds(policy, "g/script#0", 1)
        assert first == _backoff_seconds(policy, "g/script#0", 1)
        assert 0.075 <= first <= 0.125
        # Exponential growth clips at backoff_max (+/- jitter).
        assert _backoff_seconds(policy, "g/script#0", 9) <= 1.25
        # Different seeds and jobs draw different jitter.
        other = ResiliencePolicy(backoff_base=0.1, backoff_factor=2.0,
                                 backoff_max=1.0, jitter=0.25, seed=8)
        assert {_backoff_seconds(other, "g/script#0", 1),
                _backoff_seconds(policy, "g/other#1", 1)} != {first}

    def test_zero_jitter_is_exact(self):
        policy = ResiliencePolicy(backoff_base=0.05, backoff_factor=2.0,
                                  backoff_max=2.0, jitter=0.0)
        assert _backoff_seconds(policy, "j", 1) == pytest.approx(0.05)
        assert _backoff_seconds(policy, "j", 3) == pytest.approx(0.2)


# ---------------------------------------------------------------------------
# Deadlines
# ---------------------------------------------------------------------------

class TestDeadline:
    def test_sync_deadline_fails_fast(self):
        report = run_jobs(_jobs(slow_ecu), SerialExecutor(),
                          resilience=ResiliencePolicy(
                              max_attempts=3, backoff_base=0.0,
                              deadline=0.05))
        job_result = report.results[0]
        # A blown deadline is permanent: the budget is shared across
        # attempts, so attempt two would blow it again.
        assert job_result.attempts == 1
        assert "JobTimeoutError" in job_result.error
        assert "0.05 s" in job_result.error

    def test_async_deadline_fails_fast(self):
        # The async path needs a *cancellable* hang; a chaos-injected
        # instrument hang awaits on the event loop, exactly what
        # asyncio.wait_for can interrupt.
        policy = ResiliencePolicy(
            max_attempts=2, backoff_base=0.0, deadline=0.05,
            chaos=chaos.ChaosPolicy(
                seed=1,
                profile=chaos.ChaosProfile(
                    instrument_hang_rate=1.0, instrument_hang_seconds=5.0),
            ),
        )
        report = run_jobs(_jobs(InteriorLightEcu),
                          make_executor("async", 1, concurrency=2),
                          resilience=policy)
        job_result = report.results[0]
        assert job_result.attempts == 1
        assert "JobTimeoutError" in job_result.error


# ---------------------------------------------------------------------------
# Quarantine
# ---------------------------------------------------------------------------

class TestQuarantine:
    def test_circuit_breaker_reports_instead_of_executing(self):
        jobs = _jobs(flaky_io_ecu, groups=5)
        report = run_jobs(jobs, SerialExecutor(),
                          resilience=ResiliencePolicy(
                              max_attempts=1, backoff_base=0.0,
                              quarantine_after=2))
        results = report.results
        # The first two jobs fail for real and trip the breaker...
        assert [jr.attempts for jr in results[:2]] == [1, 1]
        assert all("InstrumentIOError" in jr.error for jr in results[:2])
        # ...the rest are reported without ever executing.
        assert all(jr.attempts == 0 for jr in results[2:])
        assert all("StandQuarantinedError" in jr.error for jr in results[2:])
        assert all("quarantined after 2 consecutive" in jr.error
                   for jr in results[2:])

    def test_success_resets_the_counter(self):
        failures = {"left": 1}

        def one_failure_ecu():
            if failures["left"] > 0:
                failures["left"] -= 1
                raise InstrumentIOError("one-shot")
            return InteriorLightEcu()

        report = run_jobs(_jobs(one_failure_ecu, groups=4), SerialExecutor(),
                          resilience=ResiliencePolicy(
                              max_attempts=1, backoff_base=0.0,
                              quarantine_after=2))
        assert [jr.attempts for jr in report.results] == [1, 1, 1, 1]
        assert report.results[0].error and report.ok is False
        assert all(jr.result is not None for jr in report.results[1:])


# ---------------------------------------------------------------------------
# Chaos schedules
# ---------------------------------------------------------------------------

class TestChaosSchedules:
    def test_schedule_is_pure_function_of_key(self):
        policy = chaos.ChaosPolicy.from_profile("flaky-instruments", seed=42)
        a = policy.schedule_for("g/script#0", 1)
        b = policy.schedule_for("g/script#0", 1)
        assert (a.fault_call, a.hang_call, a.glitch_call, a.kill_call) \
            == (b.fault_call, b.hang_call, b.glitch_call, b.kill_call)

    def test_faults_confined_to_first_attempts(self):
        """faulty_attempts=1 keeps every injection retry-recoverable."""
        policy = chaos.ChaosPolicy.from_profile("flaky-instruments", seed=42)
        faulted = sum(
            policy.schedule_for(f"g/s#{i}", 1).fault_call >= 0
            for i in range(50)
        )
        assert faulted > 20  # the 0.8 rate actually fires...
        assert all(
            policy.schedule_for(f"g/s#{i}", 2).fault_call == -1
            for i in range(50)
        )  # ...and never on the retry attempt

    def test_unknown_profile_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown chaos profile"):
            chaos.ChaosPolicy.from_profile("gremlins")

    def test_without_worker_kill(self):
        policy = chaos.ChaosPolicy.from_profile("fragile-workers", seed=1)
        stripped = policy.without_worker_kill()
        assert stripped.profile.worker_kill_rate == 0.0
        assert stripped.seed == policy.seed
        inert = chaos.ChaosPolicy.from_profile("flaky-store")
        assert inert.without_worker_kill() is inert

    def test_glitched_flips_verdict_and_annotates(self):
        outcome = MethodOutcome(method="get_u", passed=True, detail="12.0 V")
        flipped = chaos.glitched(outcome)
        assert flipped.passed is False
        assert "chaos: glitched reading" in flipped.detail
        assert chaos.glitched(flipped).passed is True

    def test_install_is_idempotent_and_uninstall_clears(self):
        policy = chaos.ChaosPolicy.from_profile("flaky-store", seed=5)
        chaos.install(policy)
        try:
            assert chaos.ACTIVE == policy
            chaos.install(policy)  # same value: no state reset
            assert chaos.ACTIVE == policy
        finally:
            chaos.uninstall()
        assert chaos.ACTIVE is None
        # All hooks are no-ops without an installed policy.
        chaos.on_store_commit()
        chaos.maybe_service_crash()
        assert chaos.on_instrument_call() == (0.0, False)


class TestChaosExecution:
    def test_injected_faults_are_absorbed_by_retries(self):
        policy = ResiliencePolicy(
            max_attempts=3, backoff_base=0.0,
            chaos=chaos.ChaosPolicy.from_profile("flaky-instruments", seed=42),
        )
        clean = run_jobs(_jobs(InteriorLightEcu, groups=4), SerialExecutor())
        chaotic = run_jobs(_jobs(InteriorLightEcu, groups=4),
                           SerialExecutor(), resilience=policy)
        assert chaotic.ok
        assert chaotic.verdict_table() == clean.verdict_table()
        assert any(jr.attempts > 1 for jr in chaotic.results)
        assert chaos.ACTIVE is None  # run_jobs uninstalls afterwards

    def test_process_worker_death_recovery(self):
        """Chaos kills pool workers mid-job; the executor respawns the pool
        and redelivers the unfinished chunks (with kills stripped, so the
        deterministic schedule cannot starve the batch)."""
        policy = ResiliencePolicy(
            max_attempts=3, backoff_base=0.0,
            chaos=chaos.ChaosPolicy.from_profile("fragile-workers", seed=7),
        )
        clean = run_jobs(_jobs(InteriorLightEcu, groups=4), SerialExecutor())
        report = run_jobs(_jobs(InteriorLightEcu, groups=4),
                          make_executor("process", 2), resilience=policy)
        assert report.ok
        assert report.verdict_table() == clean.verdict_table()

    def test_async_cancellation_mid_injection(self):
        """Cancelling a job whose schedule is mid-hang propagates the
        cancellation: the job is abandoned, never retried or reported as a
        transient error."""
        from repro.teststand.executor import _aexecute_with_retries

        policy = ResiliencePolicy(
            max_attempts=3, backoff_base=0.0,
            chaos=chaos.ChaosPolicy(
                seed=1,
                profile=chaos.ChaosProfile(
                    instrument_hang_rate=1.0, instrument_hang_seconds=30.0),
            ),
        )

        async def run_and_cancel():
            task = asyncio.ensure_future(
                _aexecute_with_retries(_jobs(InteriorLightEcu)[0], policy))
            await asyncio.sleep(0.05)
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task

        try:
            asyncio.run(run_and_cancel())
        finally:
            chaos.uninstall()


# ---------------------------------------------------------------------------
# Store hardening
# ---------------------------------------------------------------------------

def _small_spec(**overrides):
    base = dict(dut="interior_light_ecu", faults=("lamp_stuck_off",))
    base.update(overrides)
    return CampaignSpec(**base)


class TestStoreHardening:
    def test_file_store_runs_in_wal_mode(self, tmp_path):
        path = str(tmp_path / "wal.db")
        ResultStore(path).record_campaign(
            run_campaign(_small_spec()), _small_spec())
        with sqlite3.connect(path) as conn:
            assert conn.execute("PRAGMA journal_mode").fetchone()[0] == "wal"

    def test_write_retry_absorbs_injected_lock_errors(self, tmp_path):
        store = ResultStore(str(tmp_path / "locked.db"))
        result = run_campaign(_small_spec())
        chaos.install(chaos.ChaosPolicy(
            seed=3, profile=chaos.ChaosProfile(store_fail_rate=1.0)))
        try:
            run_id = store.record_campaign(result, _small_spec())
        finally:
            chaos.uninstall()
        assert store.get_run(run_id) is not None

    def test_concurrent_writers_share_one_file(self, tmp_path):
        path = str(tmp_path / "shared.db")
        result = run_campaign(_small_spec())
        errors = []

        def write():
            try:
                ResultStore(path).record_campaign(result, _small_spec())
            except Exception as exc:  # noqa: BLE001 - asserted below
                errors.append(exc)

        threads = [threading.Thread(target=write) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert len(ResultStore(path).list_runs()) == 4

    def test_checkpoint_round_trip(self, tmp_path):
        store = ResultStore(str(tmp_path / "ckpt.db"))
        result = run_campaign(_small_spec())
        job_results = result.execution.results
        for jr in job_results:
            assert store.save_checkpoint("campaign-x", jr)
        restored = store.load_checkpoints("campaign-x")
        assert set(restored) == {jr.job.job_id for jr in job_results}
        one = restored[job_results[0].job.job_id]
        assert one.result.verdict == job_results[0].result.verdict
        assert one.attempts == job_results[0].attempts
        assert store.clear_checkpoints("campaign-x") == len(job_results)
        assert store.load_checkpoints("campaign-x") == {}

    def test_failed_jobs_are_not_checkpointed(self, tmp_path):
        store = ResultStore(str(tmp_path / "skip.db"))
        report = run_jobs(_jobs(flaky_io_ecu), SerialExecutor(),
                          resilience=FAST)
        assert store.save_checkpoint("k", report.results[0]) is False
        assert store.load_checkpoints("k") == {}


class TestResume:
    def test_resume_requires_store(self):
        with pytest.raises(ConfigurationError, match="store"):
            run_campaign(_small_spec(resume=True))

    def test_killed_campaign_resumes_byte_identically(self, tmp_path,
                                                      monkeypatch):
        reference = run_campaign(_small_spec())
        path = str(tmp_path / "resume.db")
        spec = _small_spec(store=path, resume=True)

        original = ResultStore.save_checkpoint
        calls = {"n": 0}

        def dying(self, campaign_key, job_result):
            saved = original(self, campaign_key, job_result)
            calls["n"] += 1
            if calls["n"] >= 3:
                raise KeyboardInterrupt  # stands in for SIGKILL
            return saved

        monkeypatch.setattr(ResultStore, "save_checkpoint", dying)
        with pytest.raises(KeyboardInterrupt):
            run_campaign(spec)
        monkeypatch.setattr(ResultStore, "save_checkpoint", original)

        with sqlite3.connect(path) as conn:
            persisted = conn.execute(
                "SELECT COUNT(*) FROM checkpoints").fetchone()[0]
        assert persisted == 3

        resumed = run_campaign(spec)
        assert resumed.table() == reference.table()
        assert resumed.execution.verdict_table() \
            == reference.execution.verdict_table()
        assert resumed.store_run_id is not None
        with sqlite3.connect(path) as conn:
            assert conn.execute(
                "SELECT COUNT(*) FROM checkpoints").fetchone()[0] == 0


# ---------------------------------------------------------------------------
# Service worker crashes
# ---------------------------------------------------------------------------

class TestServiceResilience:
    def test_worker_restarts_survive_injected_crashes(self):
        from repro.service import CampaignService

        chaos.install(chaos.ChaosPolicy(
            seed=3, profile=chaos.ChaosProfile(service_crash_rate=0.9)))
        try:
            with CampaignService(":memory:") as service:
                ids = [service.submit(_small_spec()) for _ in range(3)]
                snapshots = [service.wait(i, timeout=120) for i in ids]
                assert [s["state"] for s in snapshots] == ["done"] * 3
                assert all(s["run_id"] for s in snapshots)
                assert service.worker_restarts >= 1
        finally:
            chaos.uninstall()


# ---------------------------------------------------------------------------
# CLI flags
# ---------------------------------------------------------------------------

class TestChaosCli:
    def _stdout(self, capsys, argv):
        from repro.cli import main_campaign

        code = main_campaign(argv)
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_chaos_run_is_byte_identical_to_clean(self, capsys):
        base = ["--dut", "interior_light_ecu", "--faults", "lamp_stuck_off"]
        code_clean, out_clean, _ = self._stdout(capsys, base)
        code_chaos, out_chaos, err = self._stdout(
            capsys, base + ["--chaos-seed", "42",
                            "--chaos-profile", "flaky-instruments",
                            "--retries", "2"])
        assert code_clean == 0 and code_chaos == 0
        assert out_chaos == out_clean
        assert "needed retries" in err

    def test_resume_requires_store_flag(self, capsys):
        from repro.cli import main_campaign

        with pytest.raises(SystemExit):
            main_campaign(["--dut", "interior_light_ecu", "--resume"])
        assert "--store" in capsys.readouterr().err

    def test_chaos_profile_requires_seed(self, capsys):
        from repro.cli import main_campaign

        with pytest.raises(SystemExit):
            main_campaign(["--dut", "interior_light_ecu",
                           "--chaos-profile", "murphy"])
        assert "--chaos-seed" in capsys.readouterr().err

    def test_deadline_spec_validation(self):
        with pytest.raises(ConfigurationError):
            CampaignSpec(dut="interior_light_ecu", deadline=-1.0)
        with pytest.raises(ConfigurationError):
            CampaignSpec(dut="interior_light_ecu", chaos_profile="gremlins")
