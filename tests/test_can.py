"""Tests for the CAN substrate: frames, codecs, database, bus."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.can import (
    CanBus,
    CanDatabase,
    CanFrame,
    DuplicateNodeError,
    MessageDefinition,
    SignalCoding,
    pack_field,
    unpack_field,
)
from repro.core.errors import ValueError_
from repro.dut.messages import body_can_database


class TestCanFrame:
    def test_basic(self):
        frame = CanFrame(0x100, b"\x01\x02")
        assert frame.dlc == 2
        assert frame.as_int() == 0x0201

    def test_from_int_roundtrip(self):
        frame = CanFrame.from_int(0x123, 0xABCD, 2)
        assert frame.as_int() == 0xABCD

    def test_standard_id_limit(self):
        with pytest.raises(ValueError_):
            CanFrame(0x800, b"")
        CanFrame(0x800, b"", extended=True)

    def test_payload_length_limit(self):
        with pytest.raises(ValueError_):
            CanFrame(0x1, bytes(9))

    def test_value_too_large_for_length(self):
        with pytest.raises(ValueError_):
            CanFrame.from_int(0x1, 256, 1)

    @given(st.integers(0, 0x7FF), st.integers(0, 2**32 - 1))
    def test_int_roundtrip_property(self, can_id, value):
        frame = CanFrame.from_int(can_id, value, 4)
        assert frame.as_int() == value


class TestSignalCoding:
    def test_pack_unpack(self):
        payload = pack_field(0, 4, 4, 0xA)
        assert unpack_field(payload, 4, 4) == 0xA
        assert unpack_field(payload, 0, 4) == 0

    def test_pack_overflow_rejected(self):
        with pytest.raises(ValueError_):
            pack_field(0, 0, 2, 4)

    def test_scaling(self):
        coding = SignalCoding("SPEED", 0, 12, factor=0.1)
        payload = coding.encode(0, 55.5)
        assert coding.decode(payload) == pytest.approx(55.5)

    def test_out_of_range_rejected(self):
        coding = SignalCoding("X", 0, 4)
        with pytest.raises(ValueError_):
            coding.encode(0, 16)

    def test_overlap_detection(self):
        a = SignalCoding("A", 0, 4)
        b = SignalCoding("B", 2, 4)
        c = SignalCoding("C", 4, 4)
        assert a.overlaps(b) and not a.overlaps(c)

    @given(st.integers(0, 56), st.integers(1, 8), st.data())
    def test_pack_unpack_property(self, start, length, data):
        value = data.draw(st.integers(0, (1 << length) - 1))
        base = data.draw(st.integers(0, 2**60))
        packed = pack_field(base, start, length, value)
        assert unpack_field(packed, start, length) == value


class TestMessageDefinition:
    def test_encode_decode(self):
        db = body_can_database()
        light = db.message("LIGHT_SENSOR")
        frame = light.encode({"NIGHT": 1, "BRIGHTNESS": 20})
        decoded = light.decode(frame)
        assert decoded["NIGHT"] == 1 and decoded["BRIGHTNESS"] == 20

    def test_partial_update_keeps_base(self):
        db = body_can_database()
        light = db.message("LIGHT_SENSOR")
        base = light.encode({"NIGHT": 1, "BRIGHTNESS": 50}).as_int()
        frame = light.encode({"NIGHT": 0}, base_payload=base)
        assert light.decode(frame)["BRIGHTNESS"] == 50

    def test_decode_wrong_id_rejected(self):
        db = body_can_database()
        frame = db.message("IGN_STATUS").encode_raw(1)
        with pytest.raises(ValueError_):
            db.message("LIGHT_SENSOR").decode(frame)

    def test_signal_must_fit_payload(self):
        with pytest.raises(ValueError_):
            MessageDefinition("M", 0x1, 1, (SignalCoding("S", 0, 16),))

    def test_overlapping_signals_rejected(self):
        with pytest.raises(ValueError_):
            MessageDefinition("M", 0x1, 2,
                              (SignalCoding("A", 0, 8), SignalCoding("B", 4, 8)))


class TestCanDatabase:
    def test_body_catalogue(self):
        db = body_can_database()
        assert len(db) == 8
        assert db.message_by_id(0x110).name == "LIGHT_SENSOR"
        assert db.message_for_signal("NIGHT").name == "LIGHT_SENSOR"
        assert db.message_for_signal("ign_st").name == "IGN_STATUS"

    def test_unknown_lookups(self):
        db = body_can_database()
        with pytest.raises(ValueError_):
            db.message("NOPE")
        with pytest.raises(ValueError_):
            db.message_by_id(0x7FF)
        with pytest.raises(ValueError_):
            db.message_for_signal("NOPE")

    def test_duplicate_name_and_id_rejected(self):
        db = CanDatabase((MessageDefinition("A", 0x1, 1),))
        with pytest.raises(ValueError_):
            db.add(MessageDefinition("a", 0x2, 1))
        with pytest.raises(ValueError_):
            db.add(MessageDefinition("B", 0x1, 1))

    def test_merged(self):
        merged = CanDatabase((MessageDefinition("A", 0x1, 1),)).merged_with(
            CanDatabase((MessageDefinition("B", 0x2, 1),)))
        assert "A" in merged and "B" in merged


class TestCanBus:
    def test_duplicate_node_name_raises_structured_error(self):
        """Node names attribute bus traffic; a duplicate must fail loudly
        with the offending bus and node carried on the exception."""
        bus = CanBus(name="body_bus")
        bus.attach("ecu")
        with pytest.raises(DuplicateNodeError) as excinfo:
            bus.attach("ecu")
        assert excinfo.value.bus == "body_bus"
        assert excinfo.value.node == "ecu"
        assert "ecu" in str(excinfo.value)
        # Stays a ValueError_ so pre-existing handlers keep working.
        assert isinstance(excinfo.value, ValueError_)
        # The failed attach must not have registered the duplicate: the
        # original node still receives traffic exactly once.
        other = bus.attach("other")
        other.transmit(CanFrame(0x1, b"\x01"))
        assert len(bus.nodes) == 2

    def test_broadcast_excludes_sender(self):
        bus = CanBus()
        a = bus.attach("a")
        b = bus.attach("b")
        c = bus.attach("c")
        a.transmit(CanFrame(0x1, b"\x01"))
        assert len(b.received) == 1 and len(c.received) == 1 and not a.received

    def test_listener_called(self):
        bus = CanBus()
        seen = []
        bus.attach("listener", listener=seen.append)
        sender = bus.attach("sender")
        sender.transmit(CanFrame(0x1, b"\x01"))
        assert len(seen) == 1

    def test_timestamping(self):
        bus = CanBus()
        node = bus.attach("a")
        other = bus.attach("b")
        bus.set_time(3.5)
        node.transmit(CanFrame(0x1, b""))
        assert other.received[0].timestamp == 3.5

    def test_last_frame_filter(self):
        bus = CanBus()
        rx = bus.attach("rx")
        tx = bus.attach("tx")
        tx.transmit(CanFrame(0x1, b"\x01"))
        tx.transmit(CanFrame(0x2, b"\x02"))
        assert rx.last_frame().can_id == 0x2
        assert rx.last_frame(0x1).data == b"\x01"
        assert rx.last_frame(0x7) is None

    def test_duplicate_node_name_rejected(self):
        bus = CanBus()
        bus.attach("a")
        with pytest.raises(ValueError_):
            bus.attach("a")

    def test_traffic_log_and_clear(self):
        bus = CanBus()
        tx = bus.attach("tx")
        bus.attach("rx")
        tx.transmit(CanFrame(0x1, b""))
        assert len(bus.traffic) == 1 and len(bus.frames(0x1)) == 1
        bus.clear_log()
        assert not bus.traffic
