"""Interpreter tests and full tool-chain integration tests.

The integration tests follow the paper's complete workflow: sheets -> CSV
workbook -> compile -> XML -> interpret on a virtual test stand against the
simulated ECU, on all three bundled stands.
"""

from __future__ import annotations

import pytest

from repro.core import Compiler, script_from_string, script_to_string
from repro.core.errors import ExecutionError
from repro.core.script import MethodCall, ScriptStep, SignalAction, TestScript
from repro.core.testdef import TestDefinition, TestSuite
from repro.paper import (
    build_paper_harness,
    paper_signal_set,
    paper_status_table,
    run_paper_example,
)
from repro.sheets import load_suite, save_suite
from repro.teststand import (
    TestStandInterpreter,
    Verdict,
    build_big_rack,
    build_minimal_bench,
    build_paper_stand,
    json_report,
    summary_line,
    text_report,
)


class TestPaperExampleExecution:
    def test_all_steps_pass_on_paper_stand(self):
        script, result = run_paper_example()
        assert result.passed
        assert len(result.steps) == 10
        assert all(step.passed for step in result.steps)
        assert result.duration == pytest.approx(309.0)

    def test_resources_used_match_paper(self):
        _, result = run_paper_example()
        used = set(result.resources_used())
        assert "Ress1" in used            # DVM measured INT_ILL
        assert used & {"Ress2", "Ress3"}  # at least one decade emulated a door
        assert "Ress4" in used            # CAN interface sent IGN_ST / NIGHT

    def test_timeout_steps_have_expected_verdicts(self):
        _, result = run_paper_example()
        step7 = result.steps[7]
        step8 = result.steps[8]
        ho = step7.actions[-1]
        lo = step8.actions[-1]
        assert ho.outcome.observed > 8.0       # lamp still on after 280 s
        assert lo.outcome.observed < 1.0       # lamp off after the 300 s timeout

    def test_verdict_counts(self):
        _, result = run_paper_example()
        counts = result.counts()
        assert counts["fail"] == 0 and counts["error"] == 0
        assert counts["pass"] == len(result.action_results)


class TestPortabilityAcrossStands:
    @pytest.mark.parametrize("builder", [build_paper_stand, build_big_rack, build_minimal_bench])
    def test_same_script_passes_on_every_stand(self, builder):
        script, result = run_paper_example(builder())
        assert result.passed, text_report(result)

    def test_same_xml_text_is_used(self, script):
        """The portability claim: identical XML, different stands, same verdicts."""
        xml_text = script_to_string(script)
        verdicts = []
        for builder in (build_paper_stand, build_big_rack, build_minimal_bench):
            stand = builder()
            harness = build_paper_harness(ubatt=stand.supply_voltage)
            interpreter = TestStandInterpreter(stand, harness, paper_signal_set())
            result = interpreter.run(script_from_string(xml_text))
            verdicts.append((stand.name, result.verdict))
        assert all(verdict is Verdict.PASS for _, verdict in verdicts)

    def test_relative_limits_follow_stand_supply(self):
        """At a different supply voltage the absolute limits move but the verdict holds."""
        stand = build_paper_stand(supply_voltage=9.0)
        script, result = run_paper_example(stand)
        assert result.passed
        ho_actions = [a for step in result.steps for a in step.actions
                      if a.method == "get_u" and a.outcome and a.outcome.observed > 1.0]
        assert ho_actions
        for action in ho_actions:
            assert action.outcome.limits.low == pytest.approx(0.7 * 9.0)


class TestFailureAndErrorPaths:
    def test_detects_misbehaving_dut(self):
        from repro.analysis.faults import interior_light_faults

        fault = interior_light_faults().get("lamp_stuck_off")
        from repro.dut import LoadSpec, TestHarness, body_can_database

        harness = TestHarness(fault.build(), body_can_database(),
                              loads=(LoadSpec("INT_ILL_F", "INT_ILL_R", 6.0),))
        script, _ = run_paper_example()
        interpreter = TestStandInterpreter(build_paper_stand(), harness, paper_signal_set())
        result = interpreter.run(script)
        assert not result.passed
        assert result.verdict is Verdict.FAIL

    def test_missing_resource_produces_error_verdict(self, script, harness):
        """A stand without a CAN interface cannot execute put_can -> ERROR."""
        from repro.instruments import Dvm, ResistorDecade
        from repro.teststand import ConnectionMatrix, Resource, ResourceTable, Route, Switch, TestStand

        resources = ResourceTable((
            Resource("DVM", Dvm("d")),
            Resource("DEC", ResistorDecade("r")),
        ))
        connections = ConnectionMatrix((
            Route("DVM", "hi", "INT_ILL_F", Switch("S1")),
            Route("DVM", "lo", "INT_ILL_R", Switch("S2")),
            Route("DEC", "a", "DS_FL", Switch("S3")),
            Route("DEC", "a", "DS_FR", Switch("S4")),
        ))
        stand = TestStand("crippled", resources, connections)
        interpreter = TestStandInterpreter(stand, harness, paper_signal_set())
        result = interpreter.run(script)
        assert result.verdict is Verdict.ERROR
        errors = [a for a in result.action_results if a.verdict is Verdict.ERROR]
        assert errors and all(a.method == "put_can" for a in errors)

    def test_missing_variable_rejected(self, harness):
        stand = build_paper_stand()
        step = ScriptStep(0, 0.1, (SignalAction(
            "int_ill", MethodCall("get_u", {"u_min": "(0.7*usupply2)", "u_max": "13"})),))
        script = TestScript("needs_usupply2", "interior_light_ecu", [step])
        interpreter = TestStandInterpreter(stand, harness, paper_signal_set())
        with pytest.raises(ExecutionError):
            interpreter.run(script)

    def test_unknown_signal_is_error_result(self, harness):
        stand = build_paper_stand()
        step = ScriptStep(0, 0.1, (SignalAction("mystery", MethodCall("get_u", {"u_min": "0",
                                                                                "u_max": "1"})),))
        script = TestScript("unknown_signal", "interior_light_ecu", [step])
        interpreter = TestStandInterpreter(stand, harness, paper_signal_set())
        result = interpreter.run(script)
        assert result.verdict is Verdict.ERROR

    def test_open_circuit_realisation_for_closed_doors(self, script):
        """'Closed' (INF) stimuli are realised without occupying a decade."""
        _, result = run_paper_example()
        closed_actions = [a for a in result.action_results
                          if a.method == "put_r" and a.outcome
                          and a.outcome.observed == float("inf")]
        assert closed_actions
        assert all(a.verdict is Verdict.PASS and not a.resource for a in closed_actions)


class TestReports:
    def test_text_report_contains_key_facts(self):
        _, result = run_paper_example()
        report = text_report(result)
        assert "interior_illumination" in report
        assert "paper_stand" in report
        assert "PASS" in report

    def test_summary_line(self):
        _, result = run_paper_example()
        line = summary_line(result)
        assert "10 steps" in line and "PASS" in line

    def test_json_report_parses(self):
        import json

        _, result = run_paper_example()
        payload = json.loads(json_report(result))
        assert payload["verdict"] == "pass"
        assert len(payload["steps"]) == 10
        assert payload["counts"]["fail"] == 0


class TestFullToolchainFromCsv:
    def test_csv_workbook_to_execution(self, suite, tmp_path):
        """sheets -> CSV -> reload -> compile -> XML -> run: the full paper pipeline."""
        directory = str(tmp_path / "workbook")
        save_suite(suite, directory)
        reloaded = load_suite(directory, name=suite.dut)
        script = Compiler().compile_test(reloaded, "interior_illumination")
        xml_text = script_to_string(script)
        script_again = script_from_string(xml_text)
        stand = build_paper_stand()
        harness = build_paper_harness()
        result = TestStandInterpreter(stand, harness, reloaded.signals).run(script_again)
        assert result.passed

    def test_new_sheet_authored_in_memory(self):
        """An engineer writes a fresh sheet reusing the shared vocabulary."""
        test = TestDefinition("rear_doors_by_day", signals=("NIGHT", "DS_RL", "INT_ILL"))
        test.add_step(0.5, {"NIGHT": "0", "DS_RL": "Open", "INT_ILL": "Lo"},
                      remark="rear door by day: no light")
        test.add_step(0.5, {"DS_RL": "Closed", "INT_ILL": "Lo"})
        suite = TestSuite("interior_light_ecu", paper_signal_set(), paper_status_table(), (test,))
        script = Compiler().compile_test(suite, "rear_doors_by_day")
        result = TestStandInterpreter(build_paper_stand(), build_paper_harness(),
                                      paper_signal_set()).run(script)
        assert result.passed
