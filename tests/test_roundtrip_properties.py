"""Property-based round-trip tests (seeded ``random``, stdlib only).

Two serialisation layers carry every result this library produces:

* :mod:`repro.can.codec` packs physical signal values into CAN payload
  integers - if ``decode(encode(v)) != v`` anywhere in the raw range, bus
  checks silently compare against the wrong value;
* :mod:`repro.teststand.serialize` is the durable dict form of scripts
  and execution reports - the result store, the service API and
  ``--format json`` all assume ``from_dict(to_dict(x))`` loses nothing.

Rather than enumerating hand-picked cases, each test draws a few hundred
random instances from a fixed seed (deterministic across runs, no
third-party property framework) and asserts the round trip is exact.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.can.codec import SignalCoding, pack_field, unpack_field
from repro.core import Compiler
from repro.core.errors import ValueError_
from repro.core.script import MethodCall, ScriptStep, SignalAction, TestScript
from repro.dut import InteriorLightEcu
from repro.paper import interior_harness, paper_signal_set, paper_suite
from repro.teststand import SerialExecutor, build_paper_stand, expand_jobs, run_jobs
from repro.teststand.serialize import (
    report_from_dict,
    report_to_dict,
    script_from_dict,
    script_to_dict,
)

SEED = 0xB05  # fixed: failures must reproduce byte-for-byte


# ---------------------------------------------------------------------------
# can.codec: pack/unpack and physical encode/decode
# ---------------------------------------------------------------------------

class TestCodecRoundTrip:
    def test_pack_unpack_field_is_exact(self):
        rng = random.Random(SEED)
        for _ in range(500):
            bit_length = rng.randint(1, 64)
            start_bit = rng.randint(0, 64 - bit_length)
            raw = rng.randint(0, (1 << bit_length) - 1)
            payload = rng.getrandbits(64)
            packed = pack_field(payload, start_bit, bit_length, raw)
            assert unpack_field(packed, start_bit, bit_length) == raw

    def test_pack_leaves_other_bits_untouched(self):
        rng = random.Random(SEED + 1)
        for _ in range(500):
            bit_length = rng.randint(1, 64)
            start_bit = rng.randint(0, 64 - bit_length)
            raw = rng.randint(0, (1 << bit_length) - 1)
            payload = rng.getrandbits(64)
            packed = pack_field(payload, start_bit, bit_length, raw)
            mask = ((1 << bit_length) - 1) << start_bit
            assert packed & ~mask == payload & ~mask

    def test_raw_out_of_field_range_rejected(self):
        rng = random.Random(SEED + 2)
        for _ in range(100):
            bit_length = rng.randint(1, 63)
            with pytest.raises(ValueError_):
                pack_field(0, 0, bit_length, 1 << bit_length)

    #: Scalings the shipped catalogues use, plus awkward float edges:
    #: non-dyadic factors (0.1, 1/3), large offsets, negative offsets.
    FACTORS = (1.0, 0.1, 0.25, 0.5, 2.0, 10.0, 1.0 / 3.0, 0.125)
    OFFSETS = (0.0, -40.0, 1.5, 100.0, -0.5)

    def test_encode_decode_physical_is_exact_over_raw_range(self):
        """Every representable physical value survives encode -> decode.

        Exactness means the *raw* field value round-trips: the physical
        value is compared through the same float arithmetic ``decode``
        uses, so a failure is a genuine codec defect, never float noise.
        """
        rng = random.Random(SEED + 3)
        for _ in range(300):
            bit_length = rng.randint(1, 16)
            start_bit = rng.randint(0, 64 - bit_length)
            coding = SignalCoding(
                "s", start_bit, bit_length,
                factor=rng.choice(self.FACTORS),
                offset=rng.choice(self.OFFSETS),
            )
            raw = rng.randint(0, coding.max_raw)
            physical = raw * coding.factor + coding.offset
            payload = coding.encode(rng.getrandbits(64), physical)
            assert unpack_field(payload, start_bit, bit_length) == raw
            assert coding.decode(payload) == physical

    def test_disjoint_codings_decode_independently(self):
        """Random non-overlapping fields in one payload never interfere."""
        rng = random.Random(SEED + 4)
        for _ in range(100):
            # Partition the 64-bit payload into random disjoint fields.
            cuts = sorted(rng.sample(range(1, 64), rng.randint(1, 6)))
            bounds = [0, *cuts, 64]
            codings, raws = [], []
            for index in range(len(bounds) - 1):
                start, end = bounds[index], bounds[index + 1]
                coding = SignalCoding(f"f{index}", start, end - start)
                codings.append(coding)
                raws.append(rng.randint(0, coding.max_raw))
            payload = 0
            for coding, raw in zip(codings, raws):
                payload = pack_field(payload, coding.start_bit,
                                     coding.bit_length, raw)
            for coding, raw in zip(codings, raws):
                assert unpack_field(payload, coding.start_bit,
                                    coding.bit_length) == raw
            for a_index, coding_a in enumerate(codings):
                for coding_b in codings[a_index + 1:]:
                    assert not coding_a.overlaps(coding_b)


# ---------------------------------------------------------------------------
# teststand.serialize: scripts and execution reports
# ---------------------------------------------------------------------------

def _random_script(rng: random.Random) -> TestScript:
    """A structurally random (not necessarily executable) compiled script."""
    def action() -> SignalAction:
        method = rng.choice(("put_r", "put_can", "get_u", "wait"))
        params = {
            rng.choice(("r", "u", "t", "u_min", "u_max", "value")):
                str(rng.choice((0, 1, 5.5, "open", "12.0")))
            for _ in range(rng.randint(1, 3))
        }
        signal = rng.choice(("NIGHT", "DS_FR", "INT_ILL", "S_CL"))
        return SignalAction(signal, MethodCall(method, params))

    steps = [
        ScriptStep(
            number=number,
            duration=rng.choice((0.1, 0.5, 2.0)),
            actions=tuple(action() for _ in range(rng.randint(1, 4))),
            remark=rng.choice(("", "a remark", "umlauts")),
            requirement=rng.choice((None, "REQ-1")),
        )
        for number in range(rng.randint(1, 5))
    ]
    return TestScript(
        name=f"random_{rng.randint(0, 10**6)}",
        dut="interior_light_ecu",
        steps=steps,
        setup=tuple(action() for _ in range(rng.randint(0, 2))),
        variables=tuple(rng.sample(("ubatt", "t", "x"), rng.randint(0, 2))),
        metadata={"seed": str(rng.randint(0, 99))},
        description=rng.choice(("", "randomly generated")),
    )


class TestSerializeRoundTrip:
    def test_random_scripts_round_trip_exactly(self):
        """``to_dict`` is idempotent across ``from_dict`` and preserves
        every field, for hundreds of random script shapes."""
        rng = random.Random(SEED + 5)
        for _ in range(200):
            script = _random_script(rng)
            first = script_to_dict(script)
            restored = script_from_dict(first)
            assert script_to_dict(restored) == first
            # The dict is JSON-safe and stable under a JSON round trip.
            assert script_to_dict(script_from_dict(
                json.loads(json.dumps(first)))) == first

    def test_execution_report_round_trips_byte_identically(self):
        """The documented contract on a genuinely executed report."""
        scripts = Compiler().compile_suite(paper_suite())
        jobs = expand_jobs(
            scripts, paper_signal_set(), {"paper": build_paper_stand},
            interior_harness,
            {"baseline": InteriorLightEcu, "again": InteriorLightEcu},
        )
        report = run_jobs(jobs, SerialExecutor())
        first = report_to_dict(report)
        restored = report_from_dict(first)
        assert restored.verdict_table() == report.verdict_table()
        assert report_to_dict(restored) == first
