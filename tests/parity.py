"""Shared helpers for the cross-backend parity matrix.

The repository's central determinism contract: the campaign verdict table
on stdout is byte-identical no matter which execution backend runs the
jobs, whether allocation plans are replayed or searched from scratch, and
whether the bytecode VM or the classic per-action interpreter serves the
runs.  ``test_parity_matrix.py`` asserts that contract for every
registered campaignable target - each bundled DUT and each multi-ECU
composition - in one place; the per-feature test modules
(``test_executor``, ``test_async_executor``, ``test_plan``, ``test_vm``)
keep only their feature-specific assertions.
"""

from __future__ import annotations

from dataclasses import replace

from repro.targets import (
    CampaignSpec,
    campaignable_dut_names,
    composition_names,
    get_composition,
    get_dut,
    run_campaign,
)

__all__ = [
    "BACKENDS",
    "chaos_spec_for",
    "parity_faults",
    "spec_for",
    "target_names",
    "verdict_tables",
]

#: (backend, jobs, concurrency): every execution backend in a canonical
#: worker shape that actually exercises it (multiple threads, a real
#: process pool, a multiplexing async worker).
BACKENDS = (
    ("serial", 1, 0),
    ("thread", 3, 0),
    ("process", 2, 0),
    ("async", 1, 4),
)


def target_names() -> tuple[str, ...]:
    """Every campaignable registered target: DUTs, then compositions.

    Composition names carry a ``+`` (``lock+cluster``) and live in their
    own registry, so the two name spaces never collide.
    """
    return tuple(campaignable_dut_names()) + tuple(composition_names())


def parity_faults(catalogue) -> tuple[str, ...]:
    """A bounded fault subset: the first and last catalogue entries.

    Parity is about execution infrastructure, not catalogue coverage, so
    two faults (plus the implicit healthy baseline) are enough signal per
    cell - the full matrix is |targets| x 4 backends x 2 x 2 campaigns.
    """
    names = catalogue.names
    if len(names) <= 2:
        return names
    return (names[0], names[-1])


def spec_for(
    target: str,
    backend: str = "serial",
    jobs: int = 1,
    concurrency: int = 0,
    *,
    use_plans: bool = True,
    use_vm: bool = True,
) -> CampaignSpec:
    """A bounded campaign spec for one cell of the parity matrix.

    ``use_plans`` also toggles stand reuse - the two plan-era knobs travel
    together, exactly as ``test_plan`` toggled them.
    """
    if target in composition_names():
        catalogue = get_composition(target).faults_factory()
        which = {"composition": target}
    else:
        catalogue = get_dut(target).faults_factory()
        which = {"dut": target}
    return CampaignSpec(
        faults=parity_faults(catalogue),
        backend=backend,
        jobs=jobs,
        concurrency=concurrency,
        use_plans=use_plans,
        reuse_stands=use_plans,
        use_vm=use_vm,
        **which,
    )


def chaos_spec_for(
    target: str,
    backend: str = "serial",
    jobs: int = 1,
    concurrency: int = 0,
    *,
    seed: int = 42,
    profile: str = "flaky-instruments",
) -> CampaignSpec:
    """The chaos parity cell: *spec_for* plus a recoverable fault schedule.

    The ``flaky-instruments`` profile injects only transient, first-attempt
    instrument faults, so a retrying executor must produce verdict tables
    byte-identical to the undisturbed reference - on every backend, because
    the schedule is content-keyed, not scheduling-keyed.
    """
    return replace(
        spec_for(target, backend, jobs, concurrency),
        chaos_seed=seed, chaos_profile=profile, retries=2,
    )


def verdict_tables(spec: CampaignSpec) -> tuple[str, str]:
    """Run *spec*; the byte-comparable stdout renderings of the result."""
    result = run_campaign(spec)
    return result.table(), result.execution.verdict_table()
