"""CLI error paths and exit codes.

``repro-run`` and ``repro-campaign`` distinguish three exit codes so CI
consumers can tell DUT regressions from infrastructure problems:

* 0 - passed,
* 1 - the DUT misbehaved (FAIL verdict / dirty baseline / missed fault),
* 2 - the test could not be executed (unknown DUT, unknown fault, broken
  workbook, no stand adapter, ERROR verdict).
"""

from __future__ import annotations

import os

import pytest

from repro.cli import main_campaign, main_compile, main_run
from repro.core import Compiler, write_script
from repro.core.script import MethodCall, ScriptStep, SignalAction, TestScript
from repro.core.status import StatusDefinition, StatusTable
from repro.core.testdef import TestDefinition, TestSuite
from repro.paper import paper_signal_set, paper_status_table, wiper_suite
from repro.sheets import save_suite


def _write(tmp_path, script: TestScript) -> str:
    path = str(tmp_path / f"{script.name}.xml")
    write_script(script, path)
    return path


def _failing_interior_suite() -> TestSuite:
    """A sheet expecting the lamp ON by day with all doors closed: FAILs."""
    test = TestDefinition(
        "wrong_expectation",
        signals=("NIGHT", "DS_FL", "INT_ILL"),
        description="deliberately wrong expectation",
    )
    test.add_step(0.5, {"NIGHT": "0", "DS_FL": "Closed", "INT_ILL": "Ho"})
    suite = TestSuite("interior_light_ecu", paper_signal_set(),
                      paper_status_table(), (test,))
    suite.validate()
    return suite


class TestRunExitCodes:
    def test_unreadable_script_is_exit_2(self, tmp_path, capsys):
        missing = str(tmp_path / "no_such.xml")
        assert main_run([missing]) == 2
        assert "cannot read script" in capsys.readouterr().err

    def test_unknown_dut_is_exit_2(self, tmp_path, capsys):
        path = tmp_path / "alien.xml"
        path.write_text(
            '<?xml version="1.0"?><testscript name="t" dut="alien_ecu">'
            "<steps/></testscript>"
        )
        assert main_run([str(path)]) == 2
        err = capsys.readouterr().err
        assert "unknown DUT" in err and "alien_ecu" in err

    def test_non_adaptable_stand_is_exit_2(self, tmp_path, capsys):
        script = Compiler().compile_test(wiper_suite(), "continuous_wiping")
        path = _write(tmp_path, script)
        assert main_run([path, "--stand", "paper"]) == 2
        assert "no DUT adapter" in capsys.readouterr().err

    def test_verdict_fail_is_exit_1(self, tmp_path, capsys):
        script = Compiler().compile_test(_failing_interior_suite(),
                                         "wrong_expectation")
        path = _write(tmp_path, script)
        assert main_run([path, "--quiet"]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_execution_error_is_exit_2_and_warns(self, tmp_path, capsys):
        # A signal resolving to neither a pin nor a CAN message is reported
        # as a SignalDerivationWarning by the signal derivation (so callers
        # can filter/assert it) and the action then ERRORs.
        from repro.targets import SignalDerivationWarning

        script = TestScript(
            name="bogus_probe", dut="wiper_ecu",
            steps=[ScriptStep(number=1, duration=0.1, actions=(
                SignalAction("bogus", MethodCall("get_u",
                                                 {"u_min": "0", "u_max": "1"})),
            ))],
        )
        path = _write(tmp_path, script)
        with pytest.warns(SignalDerivationWarning, match="neither a pin"):
            assert main_run([path, "--stand", "big_rack", "--quiet"]) == 2
        captured = capsys.readouterr()
        assert "ERROR" in captured.out

    def test_passing_script_is_exit_0(self, tmp_path):
        script = Compiler().compile_test(wiper_suite(), "continuous_wiping")
        path = _write(tmp_path, script)
        assert main_run([path, "--stand", "big_rack", "--quiet"]) == 0

    def test_crashing_factory_is_exit_2_not_a_traceback(self, tmp_path, capsys):
        from repro.targets import DutTarget, register_dut, unregister_dut

        def exploding_harness(ecu):
            raise RuntimeError("lab is on fire")

        register_dut(DutTarget(name="fragile_ecu", ecu_factory=object,
                               harness_factory=exploding_harness,
                               signals_factory=tuple))
        try:
            path = tmp_path / "fragile.xml"
            path.write_text(
                '<?xml version="1.0"?><testscript name="t" dut="fragile_ecu">'
                "<steps/></testscript>"
            )
            assert main_run([str(path)]) == 2
            assert "lab is on fire" in capsys.readouterr().err
        finally:
            unregister_dut("fragile_ecu")


class TestCampaignExitCodes:
    def test_broken_workbook_is_exit_2(self, tmp_path, capsys):
        missing = str(tmp_path / "no_such_workbook")
        assert main_campaign([missing]) == 2
        assert "cannot load workbook" in capsys.readouterr().err

    def test_workbook_with_garbage_is_exit_2(self, tmp_path, capsys):
        workbook = tmp_path / "garbage"
        workbook.mkdir()
        (workbook / "signals.csv").write_text("not,a,real\nsignal,sheet,!!\n")
        assert main_campaign([str(workbook)]) == 2
        assert "cannot load workbook" in capsys.readouterr().err

    def test_unknown_dut_is_exit_2(self, capsys):
        assert main_campaign(["--dut", "alien_ecu"]) == 2
        err = capsys.readouterr().err
        assert "unknown DUT" in err and "alien_ecu" in err

    def test_unknown_fault_is_exit_2(self, capsys):
        assert main_campaign(["--dut", "wiper_ecu", "--stand", "big_rack",
                              "--faults", "warp_drive_failure"]) == 2
        err = capsys.readouterr().err
        assert "unknown fault" in err and "known faults" in err

    def test_non_adaptable_stand_is_exit_2(self, capsys):
        assert main_campaign(["--dut", "wiper_ecu", "--stand", "paper"]) == 2
        assert "no DUT adapter" in capsys.readouterr().err

    def test_missing_workbook_and_dut_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main_campaign([])
        assert excinfo.value.code == 2
        assert "--dut NAME or --compose NAME is required" in capsys.readouterr().err

    def test_dut_and_compose_are_mutually_exclusive(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main_campaign(["--dut", "wiper_ecu", "--compose", "lock+cluster"])
        assert excinfo.value.code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_unknown_composition_is_exit_2(self, capsys):
        assert main_campaign(["--compose", "gone"]) == 2
        assert "unknown composition" in capsys.readouterr().err

    def test_dirty_baseline_is_exit_1(self, tmp_path, capsys):
        workbook = str(tmp_path / "wb")
        save_suite(_failing_interior_suite(), workbook)
        assert main_campaign([workbook, "--quiet"]) == 1
        assert "NOT clean" in capsys.readouterr().out

    def test_error_verdicts_are_exit_2_not_a_regression(self, tmp_path, capsys):
        # A signal whose pin no stand resource can reach makes every run
        # ERROR - an infrastructure problem, which must not masquerade as a
        # dirty baseline (1) or as fault detections (0).
        from repro.core.signals import Signal, SignalDirection, SignalKind, SignalSet

        base = paper_signal_set()
        signals = SignalSet(
            (*base, Signal("GHOST", SignalDirection.INPUT, SignalKind.RESISTIVE,
                           pins=("GHOST",), initial_status="Open")),
            dut=base.dut,
        )
        test = TestDefinition("ghost_pin", signals=("GHOST", "INT_ILL"))
        test.add_step(0.5, {"GHOST": "Open", "INT_ILL": "Lo"})
        suite = TestSuite("interior_light_ecu", signals, paper_status_table(), (test,))
        suite.validate()
        workbook = str(tmp_path / "wb")
        save_suite(suite, workbook)

        assert main_campaign([workbook, "--quiet"]) == 2
        assert "ERROR verdicts" in capsys.readouterr().err

    def test_fault_only_error_counts_as_detection(self, tmp_path, capsys):
        # An ERROR that appears only while a fault is injected is the
        # fault being caught, not an infrastructure failure: the campaign
        # must exit 0, not 2.
        from repro.analysis.faults import FaultCatalogue, FaultModel
        from repro.dut.interior_light import InteriorLightEcu
        from repro.paper import interior_harness, paper_suite
        from repro.targets import DutTarget, register_dut, unregister_dut

        class FlakyEcu(InteriorLightEcu):
            NAME = "flaky_light_ecu"

        class _BrokenDriverQuery(FlakyEcu):
            def output_drive(self, pin):
                raise RuntimeError("driver readback broken")

        register_dut(DutTarget(
            name="flaky_light_ecu",
            ecu_factory=FlakyEcu,
            harness_factory=interior_harness,
            signals_factory=paper_signal_set,
            faults_factory=lambda: FaultCatalogue("flaky_light_ecu", (
                FaultModel("driver_query_broken", "readback path dead",
                           _BrokenDriverQuery),
            )),
        ))
        try:
            base = paper_suite()
            suite = TestSuite("flaky_light_ecu", base.signals, base.statuses,
                              tuple(base))
            workbook = str(tmp_path / "wb")
            save_suite(suite, workbook)
            assert main_campaign([workbook]) == 0
            out = capsys.readouterr().out
            assert "driver_query_broken" in out and "baseline clean" in out
        finally:
            unregister_dut("flaky_light_ecu")

    def test_bundled_suite_campaign_is_exit_0(self, capsys):
        assert main_campaign(["--dut", "wiper_ecu", "--stand", "big_rack",
                              "--quiet"]) == 0
        assert "fault campaign" in capsys.readouterr().out

    def test_bundled_suite_campaign_without_stand_picks_an_adapter(self, capsys):
        # The default stand must carry the DUT's adapter pins, so --dut works
        # for every registered DUT without naming a stand.
        assert main_campaign(["--dut", "exterior_light_ecu", "--quiet"]) == 0
        assert "fault campaign" in capsys.readouterr().out

    def test_run_without_stand_picks_an_adapter(self, tmp_path):
        script = Compiler().compile_test(wiper_suite(), "continuous_wiping")
        path = _write(tmp_path, script)
        assert main_run([path, "--quiet"]) == 0

    def test_list_targets_is_exit_0(self, capsys):
        assert main_campaign(["--list-targets"]) == 0
        out = capsys.readouterr().out
        assert "registered DUTs" in out and "registered stands" in out
        for dut in ("interior_light_ecu", "central_locking_ecu", "wiper_ecu",
                    "window_lifter_ecu", "exterior_light_ecu"):
            assert dut in out
        assert "big_rack" in out and "minimal" in out and "paper" in out


class TestCompileExitCodes:
    def test_broken_workbook_is_exit_2(self, tmp_path, capsys):
        assert main_compile([str(tmp_path / "nope"), str(tmp_path / "out")]) == 2
        assert "cannot load workbook" in capsys.readouterr().err

    def test_unwritable_output_is_exit_2(self, tmp_path, capsys):
        workbook = str(tmp_path / "wb")
        save_suite(wiper_suite(), workbook)
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where the output directory should go")
        assert main_compile([workbook, str(blocker / "out")]) == 2
        assert "cannot write scripts" in capsys.readouterr().err

    def test_compile_family_workbook_is_exit_0(self, tmp_path, capsys):
        workbook = str(tmp_path / "wb")
        out = str(tmp_path / "scripts")
        save_suite(wiper_suite(), workbook)
        assert main_compile([workbook, out]) == 0
        assert os.path.exists(os.path.join(out, "continuous_wiping.xml"))
