"""Tests for the async execution backend and the instrument latency model.

The async backend's contract has four parts, each covered here:

* determinism - the verdict aggregate is byte-identical to the serial
  backend's for the same jobs (and the same campaign spec),
* cancellation - ``stop_on_error`` aborts an async run exactly like a sync
  run, and a cancelled job task propagates ``CancelledError`` instead of
  recording a verdict,
* concurrency - at most ``concurrency`` jobs are in flight at once, and a
  wide limit actually multiplexes (all jobs overlap on the one worker),
* latency model - ``io_delay`` is paid once per instrument call on both
  the blocking and the awaitable path, and stand builders forward it to
  every instrument.
"""

from __future__ import annotations

import asyncio
import functools
import time

import pytest

from repro.core import Compiler
from repro.core.errors import ReproError
from repro.core.script import MethodCall, ScriptStep, SignalAction, TestScript
from repro.dut import InteriorLightEcu
from repro.instruments import Dvm, ResistorDecade
from repro.paper import extended_suite, interior_harness, paper_signal_set, paper_suite
from repro.teststand import (
    AsyncExecutor,
    SerialExecutor,
    TestStandInterpreter,
    Verdict,
    aexecute_job,
    build_big_rack,
    build_minimal_bench,
    build_paper_stand,
    expand_jobs,
    run_jobs,
)


def _action(signal: str, method: str, **params) -> SignalAction:
    return SignalAction(signal, MethodCall(method, {k: str(v) for k, v in params.items()}))


def _paper_jobs(stands: int = 4, *, io_delay: float = 0.0, stop_on_error: bool = False):
    scripts = Compiler().compile_suite(paper_suite())
    stand_factory = functools.partial(build_paper_stand, io_delay=io_delay) \
        if io_delay else build_paper_stand
    return expand_jobs(
        scripts,
        paper_signal_set(),
        {f"stand{i}": stand_factory for i in range(stands)},
        interior_harness,
        {"baseline": InteriorLightEcu},
        stop_on_error=stop_on_error,
    )


# ---------------------------------------------------------------------------
# Determinism
# ---------------------------------------------------------------------------

class TestAsyncDeterminism:
    """Async-vs-serial verdict-table byte-identity lives in
    ``test_parity_matrix.py``; here only the async-specific contract."""

    def test_aexecute_job_equals_execute_job(self):
        job = _paper_jobs(stands=1)[0]
        sync_result = TestStandInterpreter(
            job.stand_factory(), job.harness_factory(job.ecu_factory()), job.signals
        ).run(job.script)
        async_result = asyncio.run(aexecute_job(job))
        assert sync_result.verdict is async_result.verdict
        assert [s.verdict for s in sync_result.steps] \
            == [s.verdict for s in async_result.steps]


# ---------------------------------------------------------------------------
# Cancellation / stop-on-error
# ---------------------------------------------------------------------------

class TestAsyncCancellation:
    def _script_with_broken_setup(self):
        step = ScriptStep(0, 0.5, (_action("INT_ILL", "get_u", u_min=0, u_max=1),))
        return TestScript("broken_setup", "interior_light_ecu", [step],
                          setup=(_action("no_such_signal", "get_u", u_min=0, u_max=1),
                                 _action("NIGHT", "wait", t=1)))

    def test_arun_honours_stop_on_error(self):
        interpreter = TestStandInterpreter(
            build_paper_stand(), interior_harness(InteriorLightEcu()),
            paper_signal_set(), stop_on_error=True,
        )
        result = asyncio.run(interpreter.arun(self._script_with_broken_setup()))
        # Identical to the sync contract: the failing setup action is kept,
        # later setup actions and every step are cancelled.
        assert len(result.setup) == 1
        assert result.setup[0].verdict is Verdict.ERROR
        assert result.steps == ()
        assert result.verdict is Verdict.ERROR

    def test_arun_continues_without_stop_on_error(self):
        interpreter = TestStandInterpreter(
            build_paper_stand(), interior_harness(InteriorLightEcu()),
            paper_signal_set(), stop_on_error=False,
        )
        result = asyncio.run(interpreter.arun(self._script_with_broken_setup()))
        assert len(result.setup) == 2
        assert len(result.steps) == 1

    def test_stop_on_error_jobs_identical_across_backends(self):
        jobs = _paper_jobs(stands=2, stop_on_error=True)
        serial = run_jobs(jobs, SerialExecutor())
        async_ = run_jobs(jobs, AsyncExecutor(concurrency=2))
        assert serial.verdict_table() == async_.verdict_table()

    def test_cancelled_job_propagates(self):
        """Cancelling the task of a latency-bound job abandons it mid-await
        instead of recording a verdict."""
        job = _paper_jobs(stands=1, io_delay=0.05)[0]

        async def _cancel_mid_flight():
            task = asyncio.ensure_future(aexecute_job(job))
            await asyncio.sleep(0.01)  # let the job reach its first io await
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task

        asyncio.run(_cancel_mid_flight())


# ---------------------------------------------------------------------------
# Concurrency-limit enforcement
# ---------------------------------------------------------------------------

class TestAsyncConcurrencyLimit:
    def _drive(self, n_jobs: int, concurrency: int) -> tuple[int, set[int]]:
        """Run n fake jobs through map_jobs, tracking peak in-flight count."""
        state = {"inflight": 0, "peak": 0}

        async def fake_job(job, *extra):
            state["inflight"] += 1
            state["peak"] = max(state["peak"], state["inflight"])
            await asyncio.sleep(0.005)
            state["inflight"] -= 1
            return job

        executor = AsyncExecutor(concurrency=concurrency)
        positions = {pos for pos, _ in executor.map_jobs(fake_job, list(range(n_jobs)))}
        return state["peak"], positions

    def test_limit_is_enforced(self):
        peak, positions = self._drive(n_jobs=8, concurrency=2)
        assert peak <= 2
        assert positions == set(range(8))

    def test_wide_limit_multiplexes(self):
        # Every job enters its await before the first sleep elapses, so the
        # one worker really holds all 8 jobs in flight simultaneously.
        peak, _ = self._drive(n_jobs=8, concurrency=8)
        assert peak == 8

    def test_concurrency_floor(self):
        assert AsyncExecutor(concurrency=0).concurrency == 1

    def test_rejects_nested_event_loop(self):
        executor = AsyncExecutor(concurrency=2)

        async def _inside_loop():
            with pytest.raises(ReproError):
                list(executor.map_jobs(lambda job: job, []))

        asyncio.run(_inside_loop())


# ---------------------------------------------------------------------------
# Latency model
# ---------------------------------------------------------------------------

class TestLatencyModel:
    def _measure(self, fn) -> float:
        start = time.perf_counter()
        fn()
        return time.perf_counter() - start

    def test_io_delay_defaults_to_zero(self):
        assert Dvm("fast").io_delay == 0.0

    def test_io_delay_must_be_non_negative(self):
        from repro.core.errors import InstrumentError
        with pytest.raises(InstrumentError):
            Dvm("bad", io_delay=-0.1)

    def test_execute_blocks_for_io_delay(self):
        harness = interior_harness(InteriorLightEcu())
        signals = paper_signal_set()
        dvm = Dvm("slow", io_delay=0.02)
        call = MethodCall("get_u", {"u_min": "-60", "u_max": "60"})
        elapsed = self._measure(lambda: dvm.execute(
            call, signals.get("INT_ILL"), ("INT_ILL_F", "INT_ILL_R"), harness, {}))
        assert elapsed >= 0.02

    def test_aexecute_awaits_io_delay(self):
        harness = interior_harness(InteriorLightEcu())
        signals = paper_signal_set()
        dvm = Dvm("slow", io_delay=0.02)
        call = MethodCall("get_u", {"u_min": "-60", "u_max": "60"})
        elapsed = self._measure(lambda: asyncio.run(dvm.aexecute(
            call, signals.get("INT_ILL"), ("INT_ILL_F", "INT_ILL_R"), harness, {})))
        assert elapsed >= 0.02

    def test_aexecute_outcome_matches_execute(self):
        harness = interior_harness(InteriorLightEcu())
        decade = ResistorDecade("dec", io_delay=0.0)
        call = MethodCall("put_r", {"r": "100", "r_min": "90", "r_max": "110"})
        signal = paper_signal_set().get("DS_FL")
        sync_outcome = decade.execute(call, signal, ("DS_FL",), harness, {})
        async_outcome = asyncio.run(decade.aexecute(call, signal, ("DS_FL",), harness, {}))
        assert sync_outcome.passed == async_outcome.passed
        assert sync_outcome.observed == async_outcome.observed

    @pytest.mark.parametrize("builder", [build_paper_stand, build_big_rack,
                                         build_minimal_bench])
    def test_stand_builders_forward_io_delay(self, builder):
        stand = builder(io_delay=0.123)
        delays = {resource.instrument.io_delay for resource in stand.resources}
        assert delays == {0.123}

    def test_async_multiplexing_beats_serial_on_latency_stands(self):
        """One async worker drives 4 slow stands nearly as fast as one."""
        jobs = _paper_jobs(stands=4, io_delay=0.002)
        serial = run_jobs(jobs, SerialExecutor())
        async_ = run_jobs(jobs, AsyncExecutor(concurrency=4))
        assert serial.verdict_table() == async_.verdict_table()
        # Conservative bound to stay robust on loaded CI machines; the A4
        # benchmark demonstrates the full (near-linear) multiplex gain.
        assert async_.wall_time < serial.wall_time
